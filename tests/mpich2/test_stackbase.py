"""Direct unit tests of the progress-engine base class."""

import pytest

from repro.hardware.params import NodeParams
from repro.hardware.topology import Node
from repro.mpich2.request import MPIRequest
from repro.mpich2.stackbase import BaseStack
from repro.pioman import PIOMan, PIOManParams
from repro.simulator import Simulator
from repro.threads.marcel import MarcelScheduler


class StubStack(BaseStack):
    """Records handled items; completes requests on demand."""

    def __init__(self, sim, scheduler, pioman=None, handle_cost=1e-6):
        node = Node(sim, 0, NodeParams())
        super().__init__(sim, 0, node, scheduler, pioman=pioman)
        self.handled = []
        self.handle_cost = handle_cost
        self.hook_runs = 0
        self._unexpected = {}

    def _handle_item(self, item):
        yield self.sim.timeout(self.handle_cost)
        self.handled.append((self.sim.now, item))
        if isinstance(item, tuple) and item[0] == "complete":
            item[1]._finish(self.sim)
        if isinstance(item, tuple) and item[0] == "unexpected":
            self._unexpected[item[1]] = item[2]

    def _progress_hook(self):
        self.hook_runs += 1
        return
        yield

    def probe_unexpected(self, src, tag):
        return self._unexpected.get(tag)


def build(pioman=False):
    sim = Simulator()
    sched = MarcelScheduler(sim, NodeParams(cores=4))
    pm = PIOMan(sim, sched, PIOManParams()) if pioman else None
    return sim, sched, StubStack(sim, sched, pioman=pm)


def test_active_mode_defers_items_until_wait():
    sim, sched, stack = build()
    stack.deliver(("noop", 1))
    stack.deliver(("noop", 2))
    sim.run()
    assert stack.handled == []      # nothing runs outside the library
    assert len(stack.inbox) == 2


def test_wait_drains_inbox_and_completes():
    sim, sched, stack = build()
    req = MPIRequest(sim, "recv", 1, "t")
    stack.deliver(("noop", 1))
    stack.deliver(("complete", req))

    def app():
        yield sched.acquire_core()
        yield from stack.wait(req)
        sched.release_core()
        return sim.now

    task = sim.spawn(app())
    sim.run()
    assert req.complete
    assert len(stack.handled) == 2
    assert task.value == pytest.approx(2e-6)  # two items x handle_cost


def test_wait_wakes_on_late_delivery():
    sim, sched, stack = build()
    req = MPIRequest(sim, "recv", 1, "t")

    def app():
        yield sched.acquire_core()
        yield from stack.wait(req)
        sched.release_core()
        return sim.now

    task = sim.spawn(app())
    sim.schedule(50e-6, stack.deliver, ("complete", req))
    sim.run()
    assert task.value == pytest.approx(51e-6)


def test_wait_on_completed_request_is_cheap():
    sim, sched, stack = build()
    req = MPIRequest(sim, "recv", 1, "t")
    req._finish(sim)

    def app():
        yield sched.acquire_core()
        yield from stack.wait(req)
        sched.release_core()
        return sim.now

    task = sim.spawn(app())
    sim.run()
    assert task.value == 0.0


def test_pioman_mode_processes_in_background():
    sim, sched, stack = build(pioman=True)
    stack.deliver(("noop", 1))
    sim.run()
    assert len(stack.handled) == 1   # no application thread needed


def test_hook_runs_after_each_progress_step():
    sim, sched, stack = build(pioman=True)
    stack.deliver(("noop", 1))
    stack.deliver(("noop", 2))
    sim.run()
    assert stack.hook_runs == 2


def test_waitall_handles_mixed_completion_order():
    sim, sched, stack = build()
    reqs = [MPIRequest(sim, "recv", 1, i) for i in range(3)]

    def app():
        yield sched.acquire_core()
        yield from stack.waitall(reqs)
        sched.release_core()
        return sim.now

    task = sim.spawn(app())
    # complete out of order, spread over time
    sim.schedule(30e-6, stack.deliver, ("complete", reqs[2]))
    sim.schedule(10e-6, stack.deliver, ("complete", reqs[0]))
    sim.schedule(20e-6, stack.deliver, ("complete", reqs[1]))
    sim.run()
    assert all(r.complete for r in reqs)
    assert task.value >= 30e-6


def test_probe_blocking_waits_for_unexpected():
    sim, sched, stack = build()

    def app():
        yield sched.acquire_core()
        hit = yield from stack.probe(1, "tag")
        sched.release_core()
        return (sim.now, hit)

    task = sim.spawn(app())
    sim.schedule(40e-6, stack.deliver, ("unexpected", "tag", (1, 64)))
    sim.run()
    t, hit = task.value
    assert hit == (1, 64)
    assert t >= 40e-6


def test_iprobe_returns_none_without_match():
    sim, sched, stack = build()

    def app():
        yield sched.acquire_core()
        hit = yield from stack.iprobe(1, "nothing")
        sched.release_core()
        return hit

    task = sim.spawn(app())
    sim.run()
    assert task.value is None


def test_base_handle_item_abstract():
    sim, sched, _ = build()
    node = Node(sim, 0, NodeParams())
    bare = BaseStack(sim, 0, node, sched)
    bare.deliver("x")

    def app():
        yield sched.acquire_core()
        yield from bare._drain()

    sim.spawn(app())
    with pytest.raises(NotImplementedError):
        sim.run()
