"""Helpers to run rank programs under the MPICH2 stacks."""

import pytest

from repro import config
from repro.runtime import run_mpi


def run2(program, spec=None, nprocs=2, cluster=None, ranks_per_node=None,
         trace=None):
    """Run a program on two (or more) ranks, one per node by default."""
    spec = spec or config.mpich2_nmad()
    cluster = cluster or config.xeon_pair()
    return run_mpi(program, nprocs, spec, cluster=cluster,
                   ranks_per_node=ranks_per_node, trace=trace)


def run_intra(program, spec=None, nprocs=2):
    """Run all ranks on a single node (shared-memory paths)."""
    spec = spec or config.mpich2_nmad()
    return run_mpi(program, nprocs, spec,
                   cluster=config.ClusterSpec(n_nodes=1),
                   ranks_per_node=nprocs)


@pytest.fixture(params=["direct", "netmod"])
def ch3_spec(request):
    """Both CH3 configurations, for behaviour shared across them."""
    if request.param == "direct":
        return config.mpich2_nmad()
    return config.mpich2_nmad_netmod()
