"""Unit tests for the posted/unexpected queue pair."""

import pytest

from repro.mpich2.queues import Envelope, PostedQueue, UnexpectedQueue
from repro.mpich2.request import ANY_SOURCE, ANY_TAG, MPIRequest
from repro.simulator import Simulator


def make_recv(sim, src, tag):
    return MPIRequest(sim, "recv", src, tag)


def test_posted_queue_matches_exact():
    sim = Simulator()
    q = PostedQueue()
    req = make_recv(sim, 3, "t")
    q.post(req)
    assert q.match(3, "t") is req
    assert len(q) == 0


def test_posted_queue_no_match_wrong_src_or_tag():
    sim = Simulator()
    q = PostedQueue()
    q.post(make_recv(sim, 3, "t"))
    assert q.match(4, "t") is None
    assert q.match(3, "u") is None
    assert len(q) == 1


def test_posted_queue_fifo_among_matches():
    sim = Simulator()
    q = PostedQueue()
    first = make_recv(sim, 1, "t")
    second = make_recv(sim, 1, "t")
    q.post(first)
    q.post(second)
    assert q.match(1, "t") is first
    assert q.match(1, "t") is second


def test_posted_queue_any_source_matches():
    sim = Simulator()
    q = PostedQueue()
    req = make_recv(sim, ANY_SOURCE, "t")
    q.post(req)
    assert q.match(7, "t") is req


def test_posted_queue_any_tag_matches():
    sim = Simulator()
    q = PostedQueue()
    req = make_recv(sim, 2, ANY_TAG)
    q.post(req)
    assert q.match(2, "whatever") is req


def test_posted_queue_earlier_specific_wins_over_later_wildcard():
    sim = Simulator()
    q = PostedQueue()
    specific = make_recv(sim, 1, "t")
    wildcard = make_recv(sim, ANY_SOURCE, "t")
    q.post(specific)
    q.post(wildcard)
    assert q.match(1, "t") is specific
    assert q.match(2, "t") is wildcard


def test_posted_queue_rejects_send_requests():
    sim = Simulator()
    q = PostedQueue()
    with pytest.raises(ValueError):
        q.post(MPIRequest(sim, "send", 0, "t"))


def test_posted_queue_remove():
    sim = Simulator()
    q = PostedQueue()
    req = make_recv(sim, 1, "t")
    q.post(req)
    assert q.remove(req) is True
    assert q.remove(req) is False
    assert q.match(1, "t") is None


def test_unexpected_queue_match_and_peek():
    q = UnexpectedQueue()
    env = Envelope(src=2, tag="t", size=10)
    q.add(env)
    assert q.peek(2, "t") is env
    assert len(q) == 1
    assert q.match(2, "t") is env
    assert len(q) == 0


def test_unexpected_queue_wildcard_lookup():
    q = UnexpectedQueue()
    e1 = Envelope(src=5, tag="a", size=1)
    e2 = Envelope(src=6, tag="a", size=2)
    q.add(e1)
    q.add(e2)
    assert q.match(ANY_SOURCE, "a") is e1  # arrival order
    assert q.match(ANY_SOURCE, "a") is e2


def test_unexpected_queue_no_match():
    q = UnexpectedQueue()
    q.add(Envelope(src=1, tag="x", size=1))
    assert q.match(1, "y") is None
    assert q.peek(2, "x") is None
