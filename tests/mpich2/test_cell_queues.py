"""Nemesis cell-queue mechanics: finite pools, backpressure, recycling."""

import pytest

from repro import config
from repro.hardware.params import MemParams
from repro.mpich2.nemesis.queue import CellPool
from repro.mpich2.nemesis.shm import NemesisShm, ShmCosts
from repro.runtime import MPIRuntime, run_mpi
from repro.simulator import Simulator


# ---------------------------------------------------------------------------
# pool unit tests
# ---------------------------------------------------------------------------

def test_pool_validation():
    sim = Simulator()
    with pytest.raises(ValueError):
        CellPool(sim, n_cells=1)
    with pytest.raises(ValueError):
        CellPool(sim, cell_size=0)


def test_cells_needed_rounds_up_and_caps():
    sim = Simulator()
    pool = CellPool(sim, n_cells=16, cell_size=1024)
    assert pool.cells_needed(1) == 1
    assert pool.cells_needed(1024) == 1
    assert pool.cells_needed(1025) == 2
    # streaming cap at half the pool
    assert pool.cells_needed(1024 * 1024) == 8


def test_acquire_and_release_cycle():
    sim = Simulator()
    pool = CellPool(sim, n_cells=8, cell_size=100)

    def proc():
        alloc = yield from pool.acquire(250)   # 3 cells
        assert pool.free_cells == 5
        alloc.release()
        assert pool.free_cells == 8
        alloc.release()                        # idempotent
        assert pool.free_cells == 8

    sim.spawn(proc())
    sim.run()


def test_exhausted_pool_blocks_until_release():
    sim = Simulator()
    pool = CellPool(sim, n_cells=2, cell_size=100)
    log = []

    def first():
        a1 = yield from pool.acquire(100)      # one cell each
        a2 = yield from pool.acquire(100)      # pool now empty
        yield sim.timeout(5e-6)
        a1.release()
        a2.release()

    def second():
        yield sim.timeout(1e-6)               # pool is empty now
        alloc = yield from pool.acquire(100)
        log.append(sim.now)
        alloc.release()

    sim.spawn(first())
    sim.spawn(second())
    sim.run()
    assert log[0] >= 5e-6
    assert pool.exhaustion_stalls >= 1


# ---------------------------------------------------------------------------
# shm integration
# ---------------------------------------------------------------------------

def test_shm_sender_blocks_when_receiver_never_polls():
    """A flood of unconsumed messages exhausts the sender's free queue;
    the sender stalls — Nemesis flow control."""
    sim = Simulator()
    shm = NemesisShm(sim, MemParams(), ShmCosts(n_cells=4))
    shm.register(0, lambda m: None)
    shm.register(1, lambda m: None)   # never releases cells
    progress = []

    def flood():
        for i in range(10):
            yield from shm.send(0, 1, env=i, size=64)
            progress.append(i)

    sim.spawn(flood())
    sim.run()
    assert len(progress) == 4          # stalled after the pool drained
    assert shm.pool(0).free_cells == 0


def test_mpi_flood_survives_thanks_to_receiver_polling():
    """Through the full stack the receiver's polling recycles cells, so
    a 200-message flood (>> 64 cells) completes."""
    n = 200

    def program(comm):
        if comm.rank == 0:
            for i in range(n):
                yield from comm.send(1, tag="flood", size=256, data=i)
            return None
        yield from comm.compute(50e-6)   # let the flood hit the cell limit
        out = []
        for _ in range(n):
            msg = yield from comm.recv(src=0, tag="flood")
            out.append(msg.data)
        return out

    r = run_mpi(program, 2, config.mpich2_nmad(),
                cluster=config.ClusterSpec(n_nodes=1), ranks_per_node=2)
    assert r.result(1) == list(range(n))


def test_cells_returned_after_mpi_receive():
    rt = MPIRuntime(2, config.mpich2_nmad(),
                    cluster=config.ClusterSpec(n_nodes=1), ranks_per_node=2)

    def program(comm):
        if comm.rank == 0:
            for i in range(5):
                yield from comm.send(1, tag=i, size=1024)
        else:
            for i in range(5):
                yield from comm.recv(src=0, tag=i)

    rt.run(program)
    shm = rt.shms[0]
    assert shm.pool(0).free_cells == shm.costs.n_cells
    assert shm.pool(1).free_cells == shm.costs.n_cells


def test_backpressure_measurable_in_stall_counter():
    spec = config.mpich2_nmad().with_(shm_costs=ShmCosts(n_cells=4))
    rt = MPIRuntime(2, spec, cluster=config.ClusterSpec(n_nodes=1),
                    ranks_per_node=2)

    def program(comm):
        if comm.rank == 0:
            for i in range(20):
                yield from comm.send(1, tag="x", size=256, data=i)
            return None
        yield from comm.compute(1e-3)    # ignore the flood for a while
        for _ in range(20):
            yield from comm.recv(src=0, tag="x")

    rt.run(program)
    assert rt.shms[0].pool(0).exhaustion_stalls > 0
