"""Unit tests for the Nemesis shared-memory queue model."""

import pytest

from repro.hardware.params import MemParams
from repro.mpich2.nemesis.shm import NemesisShm, ShmCosts
from repro.simulator import Simulator


def make_shm(**costs):
    sim = Simulator()
    shm = NemesisShm(sim, MemParams(), ShmCosts(**costs))
    return sim, shm


def test_register_and_deliver():
    sim, shm = make_shm()
    got = []
    shm.register(0, lambda m: None)
    shm.register(1, got.append)

    def sender():
        yield from shm.send(0, 1, env="hello", size=100)

    sim.spawn(sender())
    sim.run()
    assert len(got) == 1
    assert got[0].env == "hello"
    assert got[0].src_rank == 0


def test_duplicate_registration_rejected():
    sim, shm = make_shm()
    shm.register(0, lambda m: None)
    with pytest.raises(ValueError):
        shm.register(0, lambda m: None)


def test_send_to_unknown_rank_rejected():
    sim, shm = make_shm()
    shm.register(0, lambda m: None)

    def sender():
        yield from shm.send(0, 9, env=None, size=1)

    sim.spawn(sender())
    with pytest.raises(KeyError):
        sim.run()


def test_sender_cost_scales_with_size():
    sim, shm = make_shm()
    shm.register(0, lambda m: None)
    shm.register(1, lambda m: None)
    end = []

    def sender(size):
        yield from shm.send(0, 1, env=None, size=size)
        end.append(sim.now)

    sim.spawn(sender(1_000_000))
    sim.run()
    # copy of 1 MB at 2.5 GB/s dominates: >= 400 us
    assert end[0] >= 1_000_000 / 2.5e9


def test_cells_for_large_messages():
    sim, shm = make_shm(cell_size=1024)
    assert shm.cells_for(1) == 1
    assert shm.cells_for(1024) == 1
    assert shm.cells_for(1025) == 2
    assert shm.cells_for(10 * 1024) == 10


def test_per_cell_overhead_charged():
    sim, shm = make_shm(cell_size=1024, enqueue_cost=1e-6)
    shm.register(0, lambda m: None)
    shm.register(1, lambda m: None)
    end = []

    def sender():
        yield from shm.send(0, 1, env=None, size=4096)
        end.append(sim.now)

    sim.spawn(sender())
    sim.run()
    assert end[0] >= 4e-6  # four cells x 1 us


def test_recv_cost_includes_copy():
    sim, shm = make_shm()
    small = shm.recv_cost(8)
    large = shm.recv_cost(1 << 20)
    assert large > small
    assert large >= (1 << 20) / 2.5e9


def test_delivery_is_in_fifo_order():
    sim, shm = make_shm()
    got = []
    shm.register(0, lambda m: None)
    shm.register(1, lambda m: got.append(m.env))

    def sender():
        for i in range(5):
            yield from shm.send(0, 1, env=i, size=10)

    sim.spawn(sender())
    sim.run()
    assert got == [0, 1, 2, 3, 4]
