"""The ANY_SOURCE machinery of paper Fig. 3 (CH3-direct path)."""

import pytest

from repro import config
from repro.mpi import ANY_SOURCE

from tests.mpich2.conftest import run2, run_intra


def test_any_source_matches_remote_sender():
    def program(comm):
        if comm.rank == 0:
            yield from comm.send(1, tag="as", size=64, data="remote")
            return None
        msg = yield from comm.recv(src=ANY_SOURCE, tag="as")
        return (msg.source, msg.data)

    r = run2(program)
    assert r.result(1) == (0, "remote")


def test_any_source_matches_local_sender():
    """Fig. 3: an intra-node match removes the pending entry."""
    def program(comm):
        if comm.rank == 0:
            yield from comm.send(1, tag="as", size=64, data="local")
            return None
        msg = yield from comm.recv(src=ANY_SOURCE, tag="as")
        return (msg.source, msg.data)

    r = run_intra(program)
    assert r.result(1) == (0, "local")


def test_any_source_posted_before_message_arrives():
    def program(comm):
        if comm.rank == 0:
            yield from comm.compute(50e-6)
            yield from comm.send(1, tag="late", size=32, data="eventually")
            return None
        msg = yield from comm.recv(src=ANY_SOURCE, tag="late")
        return msg.data

    r = run2(program)
    assert r.result(1) == "eventually"


def test_any_source_message_already_unexpected():
    def program(comm):
        if comm.rank == 0:
            yield from comm.send(1, tag="early", size=32, data="waiting")
            return None
        yield from comm.compute(100e-6)  # message arrives first
        msg = yield from comm.recv(src=ANY_SOURCE, tag="early")
        return msg.data

    r = run2(program)
    assert r.result(1) == "waiting"


def test_any_source_large_message_rendezvous():
    def program(comm):
        if comm.rank == 0:
            yield from comm.send(1, tag="bigas", size=1 << 20, data="huge")
            return None
        msg = yield from comm.recv(src=ANY_SOURCE, tag="bigas")
        return (msg.source, msg.size, msg.data)

    r = run2(program)
    assert r.result(1) == (0, 1 << 20, "huge")


def test_any_source_from_multiple_senders():
    def program(comm):
        if comm.rank == 0:
            out = []
            for _ in range(3):
                msg = yield from comm.recv(src=ANY_SOURCE, tag="many")
                out.append(msg.source)
            return sorted(out)
        yield from comm.compute(comm.rank * 10e-6)
        yield from comm.send(0, tag="many", size=16, data=comm.rank)
        return None

    r = run2(program, nprocs=4, cluster=config.ClusterSpec(n_nodes=4))
    assert r.result(0) == [1, 2, 3]


def test_regular_recv_deferred_behind_any_source():
    """A known-source recv posted after an AS with the same tag must not
    steal the AS's message (MPI matching order, Fig. 3 sublists)."""
    def program(comm):
        if comm.rank == 0:
            # two messages, same tag: the first must match the AS recv
            yield from comm.send(1, tag="order", size=16, data="first")
            yield from comm.send(1, tag="order", size=16, data="second")
            return None
        as_req = yield from comm.irecv(src=ANY_SOURCE, tag="order")
        reg_req = yield from comm.irecv(src=0, tag="order")
        as_msg = yield from comm.wait(as_req)
        reg_msg = yield from comm.wait(reg_req)
        return (as_msg.data, reg_msg.data)

    r = run2(program)
    assert r.result(1) == ("first", "second")


def test_multiple_any_source_same_tag():
    def program(comm):
        if comm.rank == 0:
            yield from comm.send(1, tag="dup", size=16, data="a")
            yield from comm.send(1, tag="dup", size=16, data="b")
            return None
        r1 = yield from comm.irecv(src=ANY_SOURCE, tag="dup")
        r2 = yield from comm.irecv(src=ANY_SOURCE, tag="dup")
        m1 = yield from comm.wait(r1)
        m2 = yield from comm.wait(r2)
        return (m1.data, m2.data)

    r = run2(program)
    assert r.result(1) == ("a", "b")


def test_any_source_different_tags_independent():
    def program(comm):
        if comm.rank == 0:
            yield from comm.send(1, tag="t2", size=16, data="two")
            yield from comm.compute(20e-6)
            yield from comm.send(1, tag="t1", size=16, data="one")
            return None
        r1 = yield from comm.irecv(src=ANY_SOURCE, tag="t1")
        r2 = yield from comm.irecv(src=ANY_SOURCE, tag="t2")
        m1 = yield from comm.wait(r1)
        m2 = yield from comm.wait(r2)
        return (m1.data, m2.data)

    r = run2(program)
    assert r.result(1) == ("one", "two")


def test_any_source_latency_penalty_constant():
    """Fig. 4a: the AS path costs a constant ~300 ns, size-independent."""
    from repro.workloads.netpipe import run_netpipe

    cluster = config.xeon_pair()
    spec = config.mpich2_nmad()
    base = run_netpipe(spec, cluster, [4, 512], reps=5)
    with_as = run_netpipe(spec, cluster, [4, 512], reps=5, anysource=True)
    gap_small = with_as.latencies[0] - base.latencies[0]
    gap_big = with_as.latencies[1] - base.latencies[1]
    assert gap_small == pytest.approx(0.3e-6, abs=0.15e-6)
    assert gap_big == pytest.approx(gap_small, abs=0.05e-6)


def test_netmod_any_source_has_no_penalty():
    """Wildcards are native to CH3's central queues on the netmod path."""
    from repro.workloads.netpipe import run_netpipe

    cluster = config.xeon_pair()
    spec = config.mpich2_nmad_netmod()
    base = run_netpipe(spec, cluster, [4], reps=5)
    with_as = run_netpipe(spec, cluster, [4], reps=5, anysource=True)
    assert with_as.latencies[0] == pytest.approx(base.latencies[0], rel=0.02)
