"""CH3 stack behaviour: direct and netmod paths, shm, protocols."""

import pytest

from repro import config
from repro.mpi import ANY_TAG
from repro.simulator import Trace

from tests.mpich2.conftest import run2, run_intra


def exchange(size, data="payload"):
    def program(comm):
        if comm.rank == 0:
            yield from comm.send(1, tag=5, size=size, data=data)
            return None
        msg = yield from comm.recv(src=0, tag=5)
        return (msg.source, msg.tag, msg.size, msg.data)
    return program


def test_small_message_direct(ch3_spec):
    r = run2(exchange(100), spec=ch3_spec)
    assert r.result(1) == (0, 5, 100, "payload")


def test_large_message_both_modes(ch3_spec):
    r = run2(exchange(1 << 20, data="big"), spec=ch3_spec)
    assert r.result(1) == (0, 5, 1 << 20, "big")


def test_intra_node_message(ch3_spec):
    r = run_intra(exchange(256), spec=ch3_spec)
    assert r.result(1) == (0, 5, 256, "payload")


def test_intra_node_large_message(ch3_spec):
    r = run_intra(exchange(1 << 20, data=b"z"), spec=ch3_spec)
    assert r.result(1)[3] == b"z"


def test_netmod_nested_handshake_frame_count():
    """Fig. 2: the netmod path runs CH3 RTS/CTS *around* nmad's own
    rendezvous — 5 network frames where the direct path needs 3."""
    def count_frames(spec):
        trace = Trace(categories={"nic.tx"})
        run2(exchange(1 << 20), spec=spec, trace=trace)
        return trace.count("nic.tx")

    assert count_frames(config.mpich2_nmad()) == 3          # RTS, CTS, DATA
    assert count_frames(config.mpich2_nmad_netmod()) == 5   # + CH3 RTS, CTS


def test_netmod_slower_than_direct_large():
    def timed(spec):
        def program(comm):
            t0 = comm.sim.now
            if comm.rank == 0:
                yield from comm.send(1, tag=1, size=1 << 20)
            else:
                yield from comm.recv(src=0, tag=1)
            return comm.sim.now - t0
        return run2(program, spec=spec).result(1)

    assert timed(config.mpich2_nmad_netmod()) > timed(config.mpich2_nmad())


def test_netmod_extra_copies_slow_medium_messages():
    def timed(spec):
        return run2(exchange(16 << 10), spec=spec).elapsed

    assert timed(config.mpich2_nmad_netmod()) > timed(config.mpich2_nmad())


def test_bidirectional_exchange(ch3_spec):
    def program(comm):
        peer = 1 - comm.rank
        msg = yield from comm.sendrecv(peer, peer, tag=3, size=512,
                                       data=f"from{comm.rank}")
        return msg.data

    r = run2(program, spec=ch3_spec)
    assert r.result(0) == "from1"
    assert r.result(1) == "from0"


def test_many_messages_in_order(ch3_spec):
    n = 30

    def program(comm):
        if comm.rank == 0:
            for i in range(n):
                yield from comm.send(1, tag="seq", size=64 + i, data=i)
            return None
        out = []
        for _ in range(n):
            msg = yield from comm.recv(src=0, tag="seq")
            out.append(msg.data)
        return out

    r = run2(program, spec=ch3_spec)
    assert r.result(1) == list(range(n))


def test_mixed_sizes_same_tag_in_order(ch3_spec):
    sizes = [8, 1 << 20, 64, 256 << 10, 1024]

    def program(comm):
        if comm.rank == 0:
            for i, s in enumerate(sizes):
                yield from comm.send(1, tag="mix", size=s, data=i)
            return None
        out = []
        for _ in sizes:
            msg = yield from comm.recv(src=0, tag="mix")
            out.append(msg.data)
        return out

    r = run2(program, spec=ch3_spec)
    assert r.result(1) == list(range(len(sizes)))


def test_unexpected_messages_match_later(ch3_spec):
    def program(comm):
        if comm.rank == 0:
            for i in range(3):
                yield from comm.send(1, tag=("u", i), size=32, data=i)
            return None
        # receive in reverse posting order, long after arrival
        yield from comm.compute(1e-3)
        out = []
        for i in reversed(range(3)):
            msg = yield from comm.recv(src=0, tag=("u", i))
            out.append(msg.data)
        return out

    r = run2(program, spec=ch3_spec)
    assert r.result(1) == [2, 1, 0]


def test_nonblocking_overlap_requests(ch3_spec):
    def program(comm):
        if comm.rank == 0:
            reqs = []
            for i in range(4):
                req = yield from comm.isend(1, tag=i, size=2048, data=i)
                reqs.append(req)
            yield from comm.waitall(reqs)
            return None
        reqs = []
        for i in range(4):
            req = yield from comm.irecv(src=0, tag=i)
            reqs.append(req)
        msgs = yield from comm.waitall(reqs)
        return [m.data for m in msgs]

    r = run2(program, spec=ch3_spec)
    assert r.result(1) == [0, 1, 2, 3]


def test_any_tag_rejected_on_direct_network_path():
    def program(comm):
        if comm.rank == 1:
            yield from comm.recv(src=0, tag=ANY_TAG)
        else:
            yield from comm.send(1, tag=1, size=8)

    with pytest.raises(NotImplementedError, match="ANY_TAG"):
        run2(program, spec=config.mpich2_nmad())


def test_any_tag_works_on_netmod_path():
    def program(comm):
        if comm.rank == 0:
            yield from comm.send(1, tag="whatever", size=8, data="x")
            return None
        msg = yield from comm.recv(src=0, tag=ANY_TAG)
        return (msg.tag, msg.data)

    r = run2(program, spec=config.mpich2_nmad_netmod())
    assert r.result(1) == ("whatever", "x")


def test_any_tag_works_intra_node_direct():
    def program(comm):
        if comm.rank == 0:
            yield from comm.send(1, tag="local", size=8, data="y")
            return None
        msg = yield from comm.recv(src=0, tag=ANY_TAG)
        return msg.tag

    r = run_intra(program, spec=config.mpich2_nmad())
    assert r.result(1) == "local"


def test_vc_local_vs_remote_dispatch():
    from repro.runtime import MPIRuntime

    rt = MPIRuntime(4, config.mpich2_nmad(),
                    cluster=config.ClusterSpec(n_nodes=2), ranks_per_node=2)
    stack = rt.stacks[0]
    assert stack.vcs[1].is_local        # rank 1 shares node 0
    assert not stack.vcs[2].is_local    # ranks 2,3 on node 1
    assert stack.vcs[1].send_fn == stack._send_shm
    assert stack.vcs[2].send_fn == stack._send_direct


def test_stats_counters(ch3_spec):
    from repro.runtime import MPIRuntime

    rt = MPIRuntime(2, ch3_spec, cluster=config.xeon_pair())

    def program(comm):
        if comm.rank == 0:
            yield from comm.send(1, tag=0, size=1000)
        else:
            yield from comm.recv(src=0, tag=0)

    rt.run(program)
    assert rt.stacks[0].messages_sent == 1
    assert rt.stacks[0].bytes_sent == 1000


def test_pioman_mode_correctness():
    r = run2(exchange(100), spec=config.mpich2_nmad_pioman())
    assert r.result(1) == (0, 5, 100, "payload")
    r = run2(exchange(1 << 20, data="L"), spec=config.mpich2_nmad_pioman())
    assert r.result(1)[3] == "L"


def test_pioman_intra_node_correctness():
    r = run_intra(exchange(100), spec=config.mpich2_nmad_pioman())
    assert r.result(1) == (0, 5, 100, "payload")
