"""The four-routine network-module interface (paper Section 2.1.2)."""

import pytest

from repro import config
from repro.mpich2.nemesis.netmod import CH3_CHANNEL_TAG, NewmadNetmod
from repro.runtime import MPIRuntime

from tests.mpich2.conftest import run2


def test_netmod_stack_owns_a_module():
    rt = MPIRuntime(2, config.mpich2_nmad_netmod(), cluster=config.xeon_pair())
    assert isinstance(rt.stacks[0].netmod, NewmadNetmod)
    assert rt.stacks[0].netmod._initialized


def test_direct_stack_has_no_module():
    rt = MPIRuntime(2, config.mpich2_nmad(), cluster=config.xeon_pair())
    assert rt.stacks[0].netmod is None


def test_module_counts_packets():
    rt = MPIRuntime(2, config.mpich2_nmad_netmod(), cluster=config.xeon_pair())

    def program(comm):
        if comm.rank == 0:
            for i in range(3):
                yield from comm.send(1, tag=i, size=128)
        else:
            for i in range(3):
                yield from comm.recv(src=0, tag=i)

    rt.run(program)
    assert rt.stacks[0].netmod.packets_sent == 3
    assert rt.stacks[1].netmod.packets_received == 3


def test_module_counts_handshake_packets_for_large_messages():
    rt = MPIRuntime(2, config.mpich2_nmad_netmod(), cluster=config.xeon_pair())

    def program(comm):
        if comm.rank == 0:
            yield from comm.send(1, tag=0, size=1 << 20)
        else:
            yield from comm.recv(src=0, tag=0)

    rt.run(program)
    # sender ships CH3-RTS; receiver ships CH3-CTS through its module
    assert rt.stacks[0].netmod.packets_sent == 1
    assert rt.stacks[1].netmod.packets_sent == 1
    assert rt.stacks[0].netmod.packets_received == 1  # the CTS


def test_finalize_reports_stats():
    rt = MPIRuntime(2, config.mpich2_nmad_netmod(), cluster=config.xeon_pair())

    def program(comm):
        if comm.rank == 0:
            yield from comm.send(1, tag=0, size=64)
        else:
            yield from comm.recv(src=0, tag=0)

    rt.run(program)
    stats = rt.stacks[0].netmod.net_module_finalize()
    assert stats == {"sent": 1, "received": 0}
    assert not rt.stacks[0].netmod._initialized


def test_uninitialized_module_rejected():
    rt = MPIRuntime(2, config.mpich2_nmad_netmod(), cluster=config.xeon_pair())
    mod = rt.stacks[0].netmod
    mod.net_module_finalize()

    def use():
        yield from mod.net_module_send(1, 8, ("eager", None, 0))

    rt.sim.spawn(use())
    with pytest.raises(RuntimeError, match="before net_module_init"):
        rt.sim.run()


def test_channel_tag_shared_by_all_sources():
    """The module funnels every CH3 packet through one nmad tag — the
    'can't use the library's tag matching' limitation of Section 2.1.3."""
    assert CH3_CHANNEL_TAG == "ch3"

    def program(comm):
        if comm.rank == 2:
            a = yield from comm.recv(src=0, tag="x")
            b = yield from comm.recv(src=1, tag="y")
            return (a.data, b.data)
        yield from comm.send(2, tag="x" if comm.rank == 0 else "y",
                             size=64, data=f"from{comm.rank}")
        return None

    r = run2(program, spec=config.mpich2_nmad_netmod(), nprocs=3,
             cluster=config.ClusterSpec(n_nodes=3))
    assert r.result(2) == ("from0", "from1")
