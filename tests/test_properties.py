"""Property-based tests (hypothesis) on core invariants."""

import heapq

from hypothesis import given, settings, strategies as st

from repro.hardware.params import MemParams, NICParams
from repro.mpich2.queues import Envelope, PostedQueue, UnexpectedQueue
from repro.mpich2.request import ANY_SOURCE, MPIRequest
from repro.nmad.strategies.sampling import NetworkSampler
from repro.simulator import Simulator


# ---------------------------------------------------------------------------
# simulator
# ---------------------------------------------------------------------------

@given(st.lists(st.floats(min_value=0.0, max_value=1e3,
                          allow_nan=False), min_size=1, max_size=50))
@settings(max_examples=100, deadline=None)
def test_callbacks_run_in_time_order(delays):
    sim = Simulator()
    seen = []
    for d in delays:
        sim.schedule(d, lambda d=d: seen.append(d))
    sim.run()
    assert seen == sorted(seen, key=lambda x: x)
    assert len(seen) == len(delays)


@given(st.lists(st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
                min_size=1, max_size=30))
@settings(max_examples=50, deadline=None)
def test_simulation_is_deterministic(delays):
    def run_once():
        sim = Simulator()
        order = []
        for i, d in enumerate(delays):
            sim.schedule(d, lambda i=i: order.append((sim.now, i)))
        sim.run()
        return order

    assert run_once() == run_once()


@given(st.lists(st.tuples(st.floats(min_value=0, max_value=100,
                                    allow_nan=False),
                          st.integers(0, 5)),
                min_size=1, max_size=40))
@settings(max_examples=50, deadline=None)
def test_task_timeouts_accumulate(steps):
    """A task sleeping a series of timeouts ends at their exact sum."""
    sim = Simulator()

    def proc():
        for d, _ in steps:
            yield sim.timeout(d)

    sim.spawn(proc())
    final = sim.run()
    assert final == sum(d for d, _ in steps) or abs(
        final - sum(d for d, _ in steps)) < 1e-9


# ---------------------------------------------------------------------------
# matching queues vs a reference oracle
# ---------------------------------------------------------------------------

def oracle_match(posted, src, tag):
    """First posted (index, entry) matching an arrival, or None."""
    for i, (psrc, ptag) in enumerate(posted):
        if (psrc is ANY_SOURCE or psrc == src) and ptag == tag:
            return i
    return None


@given(st.lists(
    st.tuples(
        st.sampled_from(["post", "arrive"]),
        st.integers(0, 3) | st.just(ANY_SOURCE),
        st.integers(0, 2),
    ),
    min_size=1, max_size=60,
))
@settings(max_examples=200, deadline=None)
def test_posted_queue_matches_like_oracle(ops):
    sim = Simulator()
    queue = PostedQueue()
    model = []
    for op, src, tag in ops:
        if op == "post":
            req = MPIRequest(sim, "recv", src, tag)
            queue.post(req)
            model.append((src, tag))
        else:
            if src is ANY_SOURCE:
                src = 0
            got = queue.match(src, tag)
            want = oracle_match(model, src, tag)
            if want is None:
                assert got is None
            else:
                assert got is not None
                assert (got.peer, got.tag) == model[want]
                model.pop(want)
    assert len(queue) == len(model)


@given(st.lists(st.tuples(st.integers(0, 3), st.integers(0, 2)),
                min_size=0, max_size=40),
       st.integers(0, 3), st.integers(0, 2))
@settings(max_examples=200, deadline=None)
def test_unexpected_queue_fifo_per_pattern(arrivals, qsrc, qtag):
    q = UnexpectedQueue()
    for i, (src, tag) in enumerate(arrivals):
        q.add(Envelope(src=src, tag=tag, size=i))
    expected = [i for i, (s, t) in enumerate(arrivals)
                if s == qsrc and t == qtag]
    drained = []
    while True:
        env = q.match(qsrc, qtag)
        if env is None:
            break
        drained.append(env.size)
    assert drained == expected


# ---------------------------------------------------------------------------
# sampler splits
# ---------------------------------------------------------------------------

class _FakeDriver:
    def __init__(self, bw, lat):
        class P:
            pass
        self.nic = type("N", (), {})()
        self.nic.params = NICParams(
            name="x", post_overhead=lat / 4, recv_overhead=lat / 4,
            wire_latency=lat / 2, bandwidth=bw, per_message_gap=0.0)

    def small_latency(self):
        p = self.nic.params
        return p.post_overhead + p.transfer_time(8) + p.recv_overhead


@given(st.lists(st.floats(min_value=1e8, max_value=1e10, allow_nan=False),
                min_size=1, max_size=4),
       st.integers(min_value=1, max_value=1 << 28))
@settings(max_examples=200, deadline=None)
def test_split_conserves_bytes(bandwidths, size):
    drivers = [_FakeDriver(bw, 1e-6) for bw in bandwidths]
    shares = NetworkSampler().split(drivers, size)
    assert sum(c for _, c in shares) == size
    assert all(c > 0 for _, c in shares)
    assert len(shares) <= len(drivers)


@given(st.floats(min_value=1e8, max_value=1e10, allow_nan=False),
       st.floats(min_value=1e8, max_value=1e10, allow_nan=False))
@settings(max_examples=100, deadline=None)
def test_split_share_ordering_follows_bandwidth(bw_a, bw_b):
    da, db = _FakeDriver(bw_a, 1e-6), _FakeDriver(bw_b, 1e-6)
    shares = dict()
    for drv, chunk in NetworkSampler().split([da, db], 1 << 20):
        shares[id(drv)] = chunk
    if bw_a > bw_b * 1.01:
        assert shares.get(id(da), 0) >= shares.get(id(db), 0)


# ---------------------------------------------------------------------------
# hardware cost model invariants
# ---------------------------------------------------------------------------

@given(st.integers(0, 1 << 28), st.integers(0, 1 << 28))
@settings(max_examples=200, deadline=None)
def test_copy_time_monotone(a, b):
    mem = MemParams()
    if a <= b:
        assert mem.copy_time(a) <= mem.copy_time(b)


@given(st.integers(1, 1 << 28), st.integers(1, 1 << 28))
@settings(max_examples=200, deadline=None)
def test_injection_time_monotone_and_positive(a, b):
    p = NICParams(name="t", post_overhead=1e-7, recv_overhead=1e-7,
                  wire_latency=1e-6, bandwidth=1e9, per_message_gap=5e-8,
                  max_inline=128, dma_setup=2e-7)
    assert p.injection_time(a) > 0
    if a <= b and (a > 128) == (b > 128):
        assert p.injection_time(a) <= p.injection_time(b)
