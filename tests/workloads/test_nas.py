"""NAS skeleton behaviour: registry, scaling, kernel structure."""

import pytest

from repro import config
from repro.workloads.nas import KERNELS, adjust_procs, run_kernel
from repro.workloads.nas.base import grid_2d, grid_3d, square_side


def test_all_paper_kernels_registered():
    for name in ("bt", "cg", "ep", "ft", "sp", "mg", "lu"):
        assert name in KERNELS
    assert "is" in KERNELS  # our extension


def test_adjust_procs_square_kernels():
    assert adjust_procs("bt", 8) == 9
    assert adjust_procs("bt", 32) == 36
    assert adjust_procs("sp", 16) == 16
    assert adjust_procs("cg", 8) == 8  # pow2 kernels unchanged


def test_square_side():
    assert square_side(36) == 6
    with pytest.raises(ValueError):
        square_side(8)


def test_grid_2d_factorizations():
    assert grid_2d(8) == (4, 2)
    assert grid_2d(16) == (4, 4)
    assert grid_2d(64) == (8, 8)
    assert grid_2d(1) == (1, 1)


def test_grid_3d_factorizations():
    for p in (8, 16, 32, 64):
        fx, fy, fz = grid_3d(p)
        assert fx * fy * fz == p
        assert max(fx, fy, fz) / min(fx, fy, fz) <= 4


def test_proc_rule_enforced():
    with pytest.raises(ValueError, match="power-of-two"):
        run_kernel("cg", "A", 6, config.mpich2_nmad())
    with pytest.raises(ValueError, match="square"):
        run_kernel("bt", "A", 8, config.mpich2_nmad())


def test_cpu_seconds_uses_gop_and_rate():
    spec = KERNELS["ep"]
    assert spec.cpu_seconds("C") == pytest.approx(86.0 / 0.098)


@pytest.mark.parametrize("kernel", ["ep", "cg", "ft", "mg"])
def test_kernel_runs_and_scales(kernel):
    t8 = run_kernel(kernel, "A", 8, config.mpich2_nmad()).time_seconds
    t16 = run_kernel(kernel, "A", 16, config.mpich2_nmad()).time_seconds
    assert 0 < t16 < t8


def test_bt_runs_on_square_grids():
    t9 = run_kernel("bt", "A", 9, config.mpich2_nmad()).time_seconds
    t16 = run_kernel("bt", "A", 16, config.mpich2_nmad()).time_seconds
    assert 0 < t16 < t9


def test_lu_wavefront_completes_all_proc_counts():
    for p in (2, 8, 16):
        res = run_kernel("lu", "A", p, config.mpich2_nmad())
        assert res.time_seconds > 0


def test_classes_ordered_by_work():
    for name in ("cg", "ft", "lu"):
        ta = run_kernel(name, "A", 8, config.mpich2_nmad()).time_seconds
        tb = run_kernel(name, "B", 8, config.mpich2_nmad()).time_seconds
        assert tb > ta


def test_result_metadata():
    res = run_kernel("ep", "A", 4, config.mpich2_nmad())
    assert res.kernel == "ep"
    assert res.cls == "A"
    assert res.nprocs == 4
    assert res.simulated_iters <= res.total_iters


def test_single_process_run():
    res = run_kernel("ep", "A", 1, config.mpich2_nmad())
    assert res.time_seconds == pytest.approx(5.4 / 0.098, rel=0.01)


def test_openmpi_lag_visible_in_ep():
    a = run_kernel("ep", "A", 4, config.mpich2_nmad()).time_seconds
    b = run_kernel("ep", "A", 4, config.openmpi_ib()).time_seconds
    assert b > a * 1.05


def test_is_extension_runs_with_datatypes():
    res = run_kernel("is", "A", 4, config.mpich2_nmad())
    assert res.time_seconds > 0


def test_pioman_overhead_small_on_nas():
    base = run_kernel("cg", "A", 8, config.mpich2_nmad()).time_seconds
    piom = run_kernel("cg", "A", 8, config.mpich2_nmad_pioman()).time_seconds
    assert abs(piom - base) / base < 0.03  # paper: "usually less than 3%"


def test_parallel_efficiency_helper():
    from repro.workloads.nas import parallel_efficiency

    results = [
        run_kernel("ep", "A", p, config.mpich2_nmad()) for p in (2, 4, 8)
    ]
    eff = parallel_efficiency(results)
    assert set(eff) == {2, 4, 8}
    assert eff[2] == pytest.approx(1.0)
    # EP is embarrassingly parallel: efficiency stays near 1
    assert eff[8] > 0.95


def test_parallel_efficiency_empty():
    from repro.workloads.nas import parallel_efficiency

    assert parallel_efficiency([]) == {}


def test_comm_bound_kernel_efficiency_drops():
    from repro.workloads.nas import parallel_efficiency

    results = [
        run_kernel("cg", "A", p, config.mpich2_nmad()) for p in (2, 16)
    ]
    eff = parallel_efficiency(results)
    assert eff[16] < 1.0
