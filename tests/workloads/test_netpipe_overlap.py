"""Netpipe and overlap workload harnesses."""

import pytest

from repro import config
from repro.workloads.netpipe import run_netpipe
from repro.workloads.overlap import run_overlap


def test_netpipe_result_structure():
    res = run_netpipe(config.mpich2_nmad(), config.xeon_pair(),
                      sizes=[4, 64, 1024], reps=3)
    assert res.sizes == [4, 64, 1024]
    assert len(res.latencies) == 3
    assert res.latency_at(64) == res.latencies[1]
    assert res.bandwidth_at(1024) == res.bandwidths[2]


def test_netpipe_latency_monotone_in_size():
    res = run_netpipe(config.mpich2_nmad(), config.xeon_pair(),
                      sizes=[1, 64, 4096, 65536], reps=3)
    assert res.latencies == sorted(res.latencies)


def test_netpipe_bandwidth_grows_with_size():
    res = run_netpipe(config.mvapich2(), config.xeon_pair(),
                      sizes=[1024, 65536, 4 << 20], reps=3)
    assert res.bandwidths == sorted(res.bandwidths)


def test_netpipe_intra_node_faster_than_network():
    cluster = config.xeon_pair()
    net = run_netpipe(config.mpich2_nmad(), cluster, sizes=[64], reps=3)
    shm = run_netpipe(config.mpich2_nmad(), cluster, sizes=[64], reps=3,
                      intra_node=True)
    assert shm.latency_at(64) < net.latency_at(64) / 3


def test_netpipe_anysource_adds_constant():
    cluster = config.xeon_pair()
    base = run_netpipe(config.mpich2_nmad(), cluster, sizes=[8], reps=3)
    aso = run_netpipe(config.mpich2_nmad(), cluster, sizes=[8], reps=3,
                      anysource=True)
    assert aso.latency_at(8) > base.latency_at(8)


def test_overlap_reference_tracks_message_size():
    res = run_overlap(config.mpich2_nmad(), config.xeon_pair(),
                      sizes=[16 << 10, 256 << 10], compute=0.0, reps=2)
    assert res.at(256 << 10) > res.at(16 << 10)


def test_overlap_non_pioman_is_additive():
    compute = 400e-6
    ref = run_overlap(config.mpich2_nmad(), config.xeon_pair(),
                      sizes=[256 << 10], compute=0.0, reps=2)
    res = run_overlap(config.mpich2_nmad(), config.xeon_pair(),
                      sizes=[256 << 10], compute=compute, reps=2)
    expected = ref.at(256 << 10) + compute
    assert res.at(256 << 10) == pytest.approx(expected, rel=0.05)


def test_overlap_pioman_approaches_max():
    compute = 400e-6
    size = 256 << 10
    # reference engine pinned: this documents the 2009 threaded design
    spec = config.mpich2_nmad_pioman(progress="pioman")
    ref = run_overlap(spec, config.xeon_pair(),
                      sizes=[size], compute=0.0, reps=2)
    res = run_overlap(spec, config.xeon_pair(),
                      sizes=[size], compute=compute, reps=2)
    ideal = max(ref.at(size), compute)
    assert res.at(size) < ideal * 1.10
    # and decisively better than the non-overlapping sum
    assert res.at(size) < ref.at(size) + compute * 0.75


def test_overlap_comparators_do_not_overlap():
    compute = 400e-6
    size = 256 << 10
    for spec in (config.mvapich2(), config.openmpi_ib()):
        ref = run_overlap(spec, config.xeon_pair(), sizes=[size],
                          compute=0.0, reps=2)
        res = run_overlap(spec, config.xeon_pair(), sizes=[size],
                          compute=compute, reps=2)
        assert res.at(size) > ref.at(size) + compute * 0.9
