"""The stencil application skeleton and its overlap behaviour."""

import pytest

from repro import config
from repro.workloads.stencil import StencilConfig, run_stencil

FAST = StencilConfig(n=2048, iters=3)


def test_stencil_runs_all_stacks():
    for spec in (config.mpich2_nmad(), config.mpich2_nmad_pioman(),
                 config.mvapich2()):
        res = run_stencil(spec, 4, FAST)
        assert res.time_seconds > 0
        assert res.per_iter == pytest.approx(res.time_seconds / FAST.iters)


def test_stencil_scales_with_procs():
    t4 = run_stencil(config.mpich2_nmad(), 4, FAST).time_seconds
    t16 = run_stencil(config.mpich2_nmad(), 16, FAST).time_seconds
    assert t16 < t4


def test_halo_bytes_scale_with_depth_and_partition():
    cfg = StencilConfig(n=1024, ghost_depth=4)
    assert cfg.halo_bytes(2) == 8 * 4 * 512
    deeper = StencilConfig(n=1024, ghost_depth=8)
    assert deeper.halo_bytes(2) == 2 * cfg.halo_bytes(2)


def test_single_rank_stencil_has_no_comm():
    res = run_stencil(config.mpich2_nmad(), 1, FAST)
    cfg = FAST
    expected = cfg.iters * cfg.interior_flops(1) / 3.0e9  # Xeon preset rate
    assert res.time_seconds == pytest.approx(expected, rel=0.01)


def test_pioman_overlap_beats_everyone():
    """The application-level Fig. 7: only PIOMan converts the
    nonblocking-halo idiom into real overlap."""
    cfg = StencilConfig(n=4096, iters=4)
    nmad_plain = run_stencil(config.mpich2_nmad(), 16, cfg, overlap=False)
    nmad_over = run_stencil(config.mpich2_nmad(), 16, cfg, overlap=True)
    piom_over = run_stencil(config.mpich2_nmad_pioman(progress="pioman"),
                            16, cfg, overlap=True)

    # pre-posting helps a little everywhere; background progress helps a lot
    assert nmad_over.time_seconds <= nmad_plain.time_seconds
    assert piom_over.time_seconds < nmad_over.time_seconds * 0.95


def test_overlap_flag_recorded():
    res = run_stencil(config.mpich2_nmad(), 4, FAST, overlap=False)
    assert res.overlap is False
    assert "Nmad" in res.stack
