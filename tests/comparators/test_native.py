"""Comparator (native MPI stack) behaviour."""

import pytest

from repro import config
from repro.comparators.native import NativeCosts
from repro.mpi import ANY_SOURCE
from repro.runtime import run_mpi
from repro.simulator import Trace


def run2(program, spec=None, trace=None):
    return run_mpi(program, 2, spec or config.mvapich2(),
                   cluster=config.xeon_pair(), trace=trace)


def run_intra(program, spec=None):
    return run_mpi(program, 2, spec or config.mvapich2(),
                   cluster=config.ClusterSpec(n_nodes=1), ranks_per_node=2)


def exchange(size, data="d"):
    def program(comm):
        if comm.rank == 0:
            yield from comm.send(1, tag=1, size=size, data=data)
            return None
        msg = yield from comm.recv(src=0, tag=1)
        return (msg.source, msg.size, msg.data)
    return program


@pytest.mark.parametrize("preset", ["mvapich2", "openmpi_ib"])
@pytest.mark.parametrize("size", [8, 8 << 10, 1 << 20])
def test_exchange_all_sizes(preset, size):
    spec = getattr(config, preset)()
    r = run2(exchange(size, data="x"), spec=spec)
    assert r.result(1) == (0, size, "x")


def test_eager_single_frame_rdv_multiple():
    trace = Trace(categories={"nic.tx"})
    run2(exchange(1024), trace=trace)
    assert trace.count("nic.tx") == 1

    trace2 = Trace(categories={"nic.tx"})
    run2(exchange(1 << 20), trace=trace2)
    # RTS + CTS + one 1 MiB pipeline chunk
    assert trace2.count("nic.tx") == 3


def test_pipeline_chunking():
    costs = NativeCosts(pipeline_chunk=256 * 1024)
    spec = config.mvapich2().with_(native_costs=costs)
    trace = Trace(categories={"nic.tx"})
    run2(exchange(1 << 20), spec=spec, trace=trace)
    # RTS + CTS + 4 chunks of 256 KiB
    assert trace.count("nic.tx") == 6


def test_registration_cache_speeds_up_repeat_transfers():
    def repeated(comm):
        times = []
        for i in range(3):
            t0 = comm.sim.now
            if comm.rank == 0:
                yield from comm.send(1, tag=i, size=8 << 20)
            else:
                yield from comm.recv(src=0, tag=i)
            times.append(comm.sim.now - t0)
        return times

    times = run2(repeated).result(1)
    assert times[1] < times[0]            # cache hit from the second on
    assert times[2] == pytest.approx(times[1], rel=0.02)


def test_bw_derate_reduces_bandwidth():
    fast = config.mvapich2()
    slow = config.mvapich2().with_(
        native_costs=fast.native_costs.__class__(
            **{**fast.native_costs.__dict__, "bw_derate": 0.5}))
    t_fast = run2(exchange(8 << 20), spec=fast).elapsed
    t_slow = run2(exchange(8 << 20), spec=slow).elapsed
    assert t_slow > t_fast * 1.5


def test_shm_path_used_intra_node():
    trace = Trace(categories={"nic.tx"})
    r = run_mpi(exchange(4096, data="local"), 2, config.mvapich2(),
                cluster=config.ClusterSpec(n_nodes=1), ranks_per_node=2,
                trace=trace)
    assert r.result(1) == (0, 4096, "local")
    assert trace.count("nic.tx") == 0     # never touched the NIC


def test_native_any_source():
    def program(comm):
        if comm.rank == 0:
            yield from comm.send(1, tag="as", size=64, data="w")
            return None
        msg = yield from comm.recv(src=ANY_SOURCE, tag="as")
        return (msg.source, msg.data)

    r = run2(program)
    assert r.result(1) == (0, "w")


def test_native_message_ordering():
    def program(comm):
        if comm.rank == 0:
            for i in range(20):
                yield from comm.send(1, tag="seq", size=100, data=i)
            return None
        out = []
        for _ in range(20):
            msg = yield from comm.recv(src=0, tag="seq")
            out.append(msg.data)
        return out

    r = run2(program)
    assert r.result(1) == list(range(20))


def test_openmpi_slower_than_mvapich_at_peak():
    t_mva = run2(exchange(16 << 20), spec=config.mvapich2()).elapsed
    t_omp = run2(exchange(16 << 20), spec=config.openmpi_ib()).elapsed
    assert t_omp > t_mva


def test_btl_mx_slower_than_pml_mx():
    t_pml = run2(exchange(8), spec=config.openmpi_pml_mx()).elapsed
    t_btl = run2(exchange(8), spec=config.openmpi_btl_mx()).elapsed
    assert t_btl > t_pml + 1e-6
