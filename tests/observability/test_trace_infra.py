"""Trace infrastructure: fast-path flag, category index, subscribers."""

from repro.simulator import Simulator, Trace


def test_tracing_flag_tracks_attachment():
    sim = Simulator()
    assert sim.tracing is False
    sim.record("nic.tx", size=1)        # cheap no-op
    trace = Trace()
    sim.trace = trace
    assert sim.tracing is True
    sim.record("nic.tx", size=1)
    assert len(trace) == 1
    sim.trace = None
    assert sim.tracing is False
    sim.record("nic.tx", size=1)
    assert len(trace) == 1


def test_simulator_constructor_sets_flag():
    assert Simulator(trace=Trace()).tracing is True
    assert Simulator().tracing is False


def test_category_index_filter_and_count():
    trace = Trace()
    trace.append(0.0, "nic.tx", {"rail": "ib", "size": 10})
    trace.append(1.0, "nic.tx", {"rail": "mx", "size": 20})
    trace.append(2.0, "nmad.send_post", {"src": 0})
    assert trace.count("nic.tx") == 2
    assert trace.count("nic.tx", rail="ib") == 1
    assert trace.count("missing") == 0
    assert [r.data["size"] for r in trace.filter("nic.tx")] == [10, 20]
    assert trace.filter("nic.tx", rail="mx")[0].time == 1.0
    assert trace.categories_seen() == ["nic.tx", "nmad.send_post"]
    assert len(trace) == 3
    assert [r.category for r in trace] == ["nic.tx", "nic.tx",
                                           "nmad.send_post"]


def test_category_restriction_still_applies():
    trace = Trace(categories={"nic.tx"})
    trace.append(0.0, "nic.tx", {})
    trace.append(0.0, "nmad.send_post", {})
    assert len(trace) == 1
    assert trace.categories_seen() == ["nic.tx"]


def test_subscribers_see_records_in_order():
    trace = Trace(categories={"a"})
    seen = []
    trace.subscribe(lambda rec: seen.append(rec.category))
    trace.append(0.0, "a", {})
    trace.append(0.0, "b", {})          # filtered out: not delivered
    trace.append(1.0, "a", {})
    assert seen == ["a", "a"]
