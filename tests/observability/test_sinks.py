"""Streaming trace sinks: ring buffer, JSONL spill, sampling, subscribers."""

import json

import pytest

from repro.simulator import (JsonlTrace, RingTrace, Simulator, Trace,
                             TraceSampler, load_trace_jsonl)


# -- ring buffer ---------------------------------------------------------
def test_ring_retains_only_capacity():
    trace = RingTrace(4)
    for i in range(10):
        trace.append(i * 1e-6, "nic.tx", {"node": 0, "i": i})
    assert len(trace) == 4
    assert trace.evicted == 6
    assert trace.seen == 10
    # retained window is the newest records, oldest first
    assert [rec.data["i"] for rec in trace] == [6, 7, 8, 9]


def test_ring_lifetime_counts_survive_eviction():
    trace = RingTrace(2)
    for i in range(5):
        trace.append(i * 1e-6, "nic.tx", {"node": 0})
    trace.append(9e-6, "nmad.send_post", {"src": 0})
    assert trace.lifetime_count("nic.tx") == 5
    assert trace.lifetime_count("nmad.send_post") == 1
    assert trace.categories_seen() == ["nic.tx", "nmad.send_post"]
    # filter/count see the retained window only
    assert trace.count("nic.tx") == 1


def test_ring_subscribers_stream_past_eviction():
    trace = RingTrace(2)
    seen = []
    trace.subscribe(lambda rec: seen.append(rec.data["i"]))
    for i in range(7):
        trace.append(i * 1e-6, "nic.tx", {"node": 0, "i": i})
    assert seen == list(range(7))


def test_ring_capacity_validated():
    with pytest.raises(ValueError):
        RingTrace(0)


def test_ring_bounds_memory_on_simulator_run():
    sim = Simulator(trace=RingTrace(8))

    def proc():
        for i in range(100):
            sim.record("nic.tx", node=0, i=i)
            yield sim.timeout(1e-9)

    sim.spawn(proc())
    sim.run()
    assert len(sim.trace) == 8
    assert sim.trace.seen == 100


# -- JSONL spill ---------------------------------------------------------
def test_jsonl_round_trip(tmp_path):
    path = str(tmp_path / "t.jsonl")
    with JsonlTrace(path) as trace:
        trace.append(1e-6, "nic.tx", {"node": 0, "dur": 2e-6})
        trace.append(3e-6, "nmad.send_post", {"src": 1, "hdr": (1, 2)})
        assert len(trace) == 0          # nothing retained in memory
        assert trace.seen == 2
    loaded = load_trace_jsonl(path)
    assert len(loaded) == 2
    assert [rec.category for rec in loaded] == ["nic.tx", "nmad.send_post"]
    assert loaded.records[0].time == 1e-6
    assert loaded.records[0].data["dur"] == 2e-6
    # tuples survive as lists (JSON has no tuple type)
    assert loaded.records[1].data["hdr"] == [1, 2]


def test_jsonl_lines_are_valid_json(tmp_path):
    path = str(tmp_path / "t.jsonl")
    trace = JsonlTrace(path)
    trace.append(0.0, "nic.tx", {"node": 0, "obj": object()})
    trace.close()
    with open(path) as fh:
        rows = [json.loads(line) for line in fh]
    assert rows[0]["category"] == "nic.tx"
    assert isinstance(rows[0]["data"]["obj"], str)   # repr fallback


def test_jsonl_subscribers_fire(tmp_path):
    trace = JsonlTrace(str(tmp_path / "t.jsonl"))
    seen = []
    trace.subscribe(lambda rec: seen.append(rec.category))
    trace.append(0.0, "nic.tx", {"node": 0})
    trace.close()
    assert seen == ["nic.tx"]


# -- sampling ------------------------------------------------------------
def test_sampler_stride_by_category_is_deterministic():
    def run():
        trace = Trace(sampler=TraceSampler(strides={"pioman.poll": 3}))
        for i in range(10):
            trace.append(i * 1e-6, "pioman.poll", {"node": 0, "i": i})
        return [rec.data["i"] for rec in trace]

    first, second = run(), run()
    assert first == second == [0, 3, 6, 9]


def test_sampler_stride_by_layer_and_exemptions():
    sampler = TraceSampler(strides={"nic": 4})
    trace = Trace(sampler=sampler)
    for i in range(8):
        trace.append(i * 1e-6, "nic.tx", {"node": 0})
    # begin/end pairs are never stride-sampled (span pairing would break)
    for i in range(4):
        trace.append(i * 1e-6, "mpich2.op.begin", {"rank": 0, "op": "send"})
        trace.append(i * 1e-6 + 1e-7, "mpich2.op.end",
                     {"rank": 0, "op": "send"})
    assert trace.count("nic.tx") == 2            # every 4th of 8
    assert trace.count("mpich2.op.begin") == 4   # exempt
    assert trace.sampled_out == 6


def test_sampler_entity_filter():
    trace = Trace(sampler=TraceSampler(entities=[0]))
    trace.append(0.0, "nmad.send_post", {"src": 0})
    trace.append(0.0, "nmad.send_post", {"src": 1})
    trace.append(0.0, "strategy.flush", {})      # no entity -> admitted
    assert trace.count("nmad.send_post") == 1
    assert trace.count("strategy.flush") == 1
    assert trace.sampled_out == 1


def test_sampler_rejects_bad_stride():
    with pytest.raises(ValueError):
        TraceSampler(strides={"nic": 0})


# -- subscriber lifecycle ------------------------------------------------
def test_unsubscribe_stops_delivery():
    trace = Trace()
    seen = []
    fn = seen.append
    trace.subscribe(fn)
    trace.append(0.0, "nic.tx", {"node": 0})
    trace.unsubscribe(fn)
    trace.append(1e-6, "nic.tx", {"node": 0})
    assert len(seen) == 1
    assert len(trace) == 2
    # unknown / repeated unsubscribe is a no-op
    trace.unsubscribe(fn)


def test_raising_subscriber_never_loses_records():
    trace = Trace()
    good = []

    def bad(rec):
        raise RuntimeError("boom")

    trace.subscribe(bad)
    trace.subscribe(good.append)
    trace.append(0.0, "nic.tx", {"node": 0})
    trace.append(1e-6, "nic.tx", {"node": 0})
    # both records were appended and the healthy subscriber saw both
    assert len(trace) == 2
    assert len(good) == 2
    # the raising subscriber was detached after its first failure
    assert len(trace.subscriber_errors) == 1
    fn, exc = trace.subscriber_errors[0]
    assert fn is bad
    assert isinstance(exc, RuntimeError)
