"""The ``link.*`` layer: taxonomy, live metrics, and export labels."""

from __future__ import annotations

from repro import config
from repro.hardware.netgraph import ring
from repro.observability import (
    ALL_LAYERS,
    CATEGORIES,
    LINK_LAYERS,
    attach_metrics,
    entity_of,
    layer_of,
)
from repro.runtime import run_mpi
from repro.simulator import Trace

SIZE = 65536


def _traced_routed_run():
    trace = Trace()
    metrics = attach_metrics(trace)

    def program(comm):
        if comm.rank == 0:
            yield from comm.send(1, tag=1, size=SIZE)
            yield from comm.recv(src=1, tag=2)
        elif comm.rank == 1:
            yield from comm.recv(src=0, tag=1)
            yield from comm.send(0, tag=2, size=SIZE)

    run_mpi(program, 2, config.mpich2_nmad(),
            cluster=config.ClusterSpec(n_nodes=4, topology=ring(4)),
            trace=trace)
    return trace, metrics


def test_link_layer_is_documented():
    assert "link" in ALL_LAYERS
    assert LINK_LAYERS == ("link",)
    assert layer_of("link.xmit") == "link"
    assert "link.xmit" in CATEGORIES


def test_routed_run_emits_only_documented_link_categories():
    trace, _metrics = _traced_routed_run()
    emitted = {rec.category for rec in trace.records}
    assert "link.xmit" in emitted
    assert emitted <= set(CATEGORIES)


def test_link_records_carry_hop_context():
    trace, _metrics = _traced_routed_run()
    recs = [r for r in trace.records if r.category == "link.xmit"]
    for rec in recs:
        for key in ("rail", "link", "dur", "queued", "depth", "hop", "hops"):
            assert key in rec.data
        assert 0 <= rec.data["hop"] < rec.data["hops"]


def test_entity_of_names_the_link_not_a_rank():
    trace, _metrics = _traced_routed_run()
    rec = next(r for r in trace.records if r.category == "link.xmit")
    label = entity_of("link.xmit", rec.data)
    assert label == f"{rec.data['rail']} {rec.data['link']}"
    assert not label.startswith("rank")


def test_trace_metrics_aggregate_link_traffic():
    trace, metrics = _traced_routed_run()
    registry = metrics.registry
    labels = registry.labels_of("link.frames")
    assert labels, "routed traffic must populate per-link instruments"
    recs = [r for r in trace.records if r.category == "link.xmit"]
    total = sum(registry.counter("link.frames", label).value
                for label in labels)
    assert total == len(recs)
    busy = sum(registry.counter("link.busy_time", label).value
               for label in labels)
    assert busy > 0
    for label in labels:
        assert registry.gauge("link.queue_depth", label).high >= 1


def test_hottest_links_ranked_and_bounded():
    _trace, metrics = _traced_routed_run()
    hot = metrics.hottest_links(3)
    assert 0 < len(hot) <= 3
    for row in hot.values():
        assert set(row) == {"queue_delay", "busy_time", "max_depth"}


def test_flat_run_emits_no_link_records():
    trace = Trace()

    def program(comm):
        if comm.rank == 0:
            yield from comm.send(1, tag=1, size=SIZE)
        else:
            yield from comm.recv(src=0, tag=1)

    run_mpi(program, 2, config.mpich2_nmad(),
            cluster=config.xeon_pair(), trace=trace)
    assert not any(r.category.startswith("link.") for r in trace.records)
