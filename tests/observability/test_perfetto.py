"""Perfetto / Chrome trace-event export correctness."""

import json

import pytest

from repro.observability import LAYERS, to_perfetto, write_perfetto
from repro.workloads.netpipe import pingpong

from tests.observability.helpers import RDV_SIZE, run_traced


@pytest.fixture(scope="module")
def doc():
    trace = run_traced(pingpong(RDV_SIZE, reps=2, warmup=0))
    return to_perfetto(trace)


def test_valid_json_roundtrip(doc):
    text = json.dumps(doc)
    again = json.loads(text)
    assert again["traceEvents"]


def test_process_tracks_cover_all_layers(doc):
    names = {e["args"]["name"] for e in doc["traceEvents"]
             if e["ph"] == "M" and e["name"] == "process_name"}
    assert set(LAYERS) <= names
    assert len(names) >= 5


def test_timestamps_monotonic(doc):
    ts = [e["ts"] for e in doc["traceEvents"] if e["ph"] != "M"]
    assert ts == sorted(ts)
    assert all(t >= 0.0 for t in ts)


def test_complete_events_have_positive_duration(doc):
    slices = [e for e in doc["traceEvents"] if e["ph"] == "X"]
    assert slices
    assert all(e["dur"] > 0.0 for e in slices)


def test_instant_events_have_scope(doc):
    instants = [e for e in doc["traceEvents"] if e["ph"] == "i"]
    assert instants
    assert all(e["s"] == "t" for e in instants)


def test_counter_track_emitted(doc):
    counters = [e for e in doc["traceEvents"] if e["ph"] == "C"]
    assert any(e["name"] == "strategy window depth" for e in counters)
    assert all("depth" in e["args"] for e in counters)


def test_every_event_names_its_layer(doc):
    for e in doc["traceEvents"]:
        if e["ph"] == "M":
            continue
        assert e["cat"] in LAYERS
        assert e["name"].startswith(e["cat"] + ".") or e["ph"] == "C"


def test_args_are_json_safe_with_tuple_tags():
    # pingpong tags are tuples like ("p", 0); repr/list sanitizing applies
    trace = run_traced(pingpong(1024, reps=1, warmup=0))
    text = json.dumps(to_perfetto(trace))
    assert '"tag"' in text


def test_write_perfetto(tmp_path):
    trace = run_traced(pingpong(RDV_SIZE, reps=1, warmup=0))
    path = tmp_path / "trace.json"
    assert write_perfetto(trace, str(path)) == str(path)
    with open(path) as fh:
        doc = json.load(fh)
    assert doc["traceEvents"]
    assert doc["otherData"]["generator"] == "repro.observability.perfetto"
