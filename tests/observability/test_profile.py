"""The sim-time span profiler: pairing, nesting, attribution invariants."""

import pytest

from repro import config
from repro.observability import SpanProfiler, profile_trace
from repro.runtime.builder import MPIRuntime
from repro.simulator import RingTrace
from repro.simulator.tracing import TraceRecord
from repro.workloads.collbench import collbench
from tests.observability.helpers import RDV_SIZE, run_traced

US = 1e-6


def feed(profiler, events):
    for t, cat, data in events:
        profiler.on_record(TraceRecord(t, cat, data))


def folded_matches_busy(prof):
    busy = prof.total_busy()
    return abs(sum(prof.folded().values()) - busy) < 1e-12 + 1e-9 * busy


# -- synthetic span streams ---------------------------------------------
def test_nested_begin_end_pairs():
    prof = SpanProfiler()
    feed(prof, [
        (0 * US, "coll.begin", {"rank": 0, "coll": "allreduce",
                                "algo": "ring"}),
        (1 * US, "mpich2.op.begin", {"rank": 0, "op": "send"}),
        (3 * US, "mpich2.op.end", {"rank": 0, "op": "send", "dur": 2 * US}),
        (10 * US, "coll.end", {"rank": 0, "coll": "allreduce"}),
    ])
    prof.finalize(10 * US)
    roots = prof.forest()["rank0"]
    assert len(roots) == 1
    root = roots[0]
    assert root.name == "coll.allreduce[ring]"
    assert [c.name for c in root.children] == ["mpich2.send"]
    assert root.inclusive == pytest.approx(10 * US)
    assert root.exclusive == pytest.approx(8 * US)
    assert root.children[0].exclusive == pytest.approx(2 * US)
    assert prof.total_busy() == pytest.approx(10 * US)
    assert folded_matches_busy(prof)


def test_missing_end_truncated_at_finalize():
    prof = SpanProfiler()
    feed(prof, [(2 * US, "mpich2.op.begin", {"rank": 1, "op": "wait"})])
    prof.finalize(9 * US)
    assert prof.truncated_spans == 1
    (span,) = prof.forest()["rank1"]
    assert span.truncated
    assert span.start == pytest.approx(2 * US)
    assert span.end == pytest.approx(9 * US)
    # finalize is idempotent: nothing new to close
    prof.finalize(20 * US)
    assert prof.truncated_spans == 1


def test_unmatched_end_counted_and_recovered_via_dur():
    prof = SpanProfiler()
    feed(prof, [
        (5 * US, "mpich2.op.end", {"rank": 0, "op": "send", "dur": 2 * US}),
        (8 * US, "mpich2.op.end", {"rank": 0, "op": "recv"}),
    ])
    prof.finalize(8 * US)
    assert prof.unmatched_ends == 2
    # the dur-carrying end recovered its extent; the bare one vanished
    (span,) = prof.forest()["rank0"]
    assert span.name == "mpich2.send"
    assert span.start == pytest.approx(3 * US)
    assert span.end == pytest.approx(5 * US)


def test_overlapping_spans_on_one_rank_are_clipped():
    # two threads of one rank: send [0, 10], recv [5, 15] partially overlap
    prof = SpanProfiler()
    feed(prof, [
        (0 * US, "mpich2.op.begin", {"rank": 0, "op": "send"}),
        (5 * US, "mpich2.op.begin", {"rank": 0, "op": "recv"}),
        (10 * US, "mpich2.op.end", {"rank": 0, "op": "send"}),
        (15 * US, "mpich2.op.end", {"rank": 0, "op": "recv"}),
    ])
    prof.finalize(15 * US)
    (root,) = prof.forest()["rank0"]
    assert root.name == "mpich2.send"
    (child,) = root.children
    assert child.name == "mpich2.recv"
    assert child.clipped == pytest.approx(5 * US)
    assert child.end == pytest.approx(10 * US)
    assert prof.clipped_spans == 1
    assert prof.clipped_seconds == pytest.approx(5 * US)
    # the tree stays consistent: folded still covers exactly the busy time
    assert prof.total_busy() == pytest.approx(10 * US)
    assert folded_matches_busy(prof)


def test_forest_rebuild_never_double_counts_clipping():
    prof = SpanProfiler()
    feed(prof, [
        (0 * US, "mpich2.op.begin", {"rank": 0, "op": "send"}),
        (5 * US, "mpich2.op.begin", {"rank": 0, "op": "recv"}),
        (10 * US, "mpich2.op.end", {"rank": 0, "op": "send"}),
        (15 * US, "mpich2.op.end", {"rank": 0, "op": "recv"}),
    ])
    prof.finalize(15 * US)
    prof.forest()
    first = prof.clipped_seconds
    # closing another span invalidates the forest; rebuilding must not
    # re-add the earlier clip nor keep last build's shortened extents
    prof.on_record(TraceRecord(20 * US, "nic.tx",
                               {"node": 0, "dur": 1 * US}))
    prof.forest()
    assert prof.clipped_seconds == pytest.approx(first)


def test_zero_width_and_interleaved_ops():
    prof = SpanProfiler()
    feed(prof, [
        (1 * US, "mpich2.op.begin", {"rank": 0, "op": "wait"}),
        (1 * US, "mpich2.op.end", {"rank": 0, "op": "wait"}),
        # interleaved distinct ops match by their op discriminator
        (2 * US, "mpich2.op.begin", {"rank": 0, "op": "send"}),
        (3 * US, "mpich2.op.begin", {"rank": 0, "op": "recv"}),
        (4 * US, "mpich2.op.end", {"rank": 0, "op": "send"}),
        (5 * US, "mpich2.op.end", {"rank": 0, "op": "recv"}),
    ])
    prof.finalize(5 * US)
    assert prof.unmatched_ends == 0
    names = sorted(s.name for s in prof.all_spans())
    assert names == ["mpich2.recv", "mpich2.send", "mpich2.wait"]
    zero = next(s for s in prof.all_spans() if s.name == "mpich2.wait")
    assert zero.inclusive == 0.0
    assert folded_matches_busy(prof)


def test_dur_records_become_leaf_spans():
    prof = SpanProfiler()
    feed(prof, [
        (0 * US, "mpich2.op.begin", {"rank": 0, "op": "send"}),
        (1 * US, "nmad.send_post", {"src": 0, "dur": 2 * US}),
        (6 * US, "mpich2.op.end", {"rank": 0, "op": "send"}),
    ])
    prof.finalize(6 * US)
    (root,) = prof.forest()["rank0"]
    (leaf,) = root.children
    assert leaf.name == "nmad.send_post"
    assert leaf.inclusive == pytest.approx(2 * US)
    assert root.exclusive == pytest.approx(4 * US)


def test_detach_stops_feeding():
    from repro.simulator import Trace

    trace = Trace()
    prof = SpanProfiler().attach(trace)
    trace.append(0.0, "mpich2.op.begin", {"rank": 0, "op": "send"})
    prof.detach()
    trace.append(1 * US, "mpich2.op.end", {"rank": 0, "op": "send"})
    prof.finalize(1 * US)
    assert prof.truncated_spans == 1   # the end was never seen


# -- real workloads ------------------------------------------------------
def test_pingpong_folded_sum_equals_busy():
    from repro.workloads.netpipe import pingpong

    trace = run_traced(pingpong(RDV_SIZE, reps=3, warmup=0))
    prof = profile_trace(trace)
    busy = prof.total_busy()
    assert busy > 0
    assert folded_matches_busy(prof)
    layers = prof.per_layer()
    assert "mpich2" in layers and "nic" in layers
    # per-layer self times partition the busy time
    self_sum = sum(row["exclusive"] for row in layers.values())
    assert self_sum == pytest.approx(busy, rel=1e-9)
    # report renders without error and carries the headline number
    assert "total simulated busy time" in prof.report()


def test_p64_collbench_under_ring_sink_is_bounded():
    capacity = 2048
    trace = RingTrace(capacity)
    prof = SpanProfiler().attach(trace)
    runtime = MPIRuntime(64, config.mpich2_nmad(), trace=trace)
    runtime.run(collbench("allreduce", 1024, reps=1, warmup=0))
    prof.finalize(runtime.sim.now)
    # the sink stayed bounded while the profiler saw the whole stream
    assert len(trace) <= capacity
    assert trace.seen > capacity
    assert trace.evicted == trace.seen - capacity
    assert prof.total_busy() > 0
    assert folded_matches_busy(prof)
    # all 64 ranks show up as entities
    ranks = {e for e in prof.forest() if e.startswith("rank")}
    assert len(ranks) == 64


def test_write_folded_nanosecond_lines(tmp_path):
    from repro.workloads.netpipe import pingpong

    trace = run_traced(pingpong(RDV_SIZE, reps=1, warmup=0))
    prof = profile_trace(trace)
    path = prof.write_folded(str(tmp_path / "out.folded"))
    total = 0
    with open(path) as fh:
        for line in fh:
            stack, value = line.rsplit(" ", 1)
            assert ";" in stack
            total += int(value)
    assert total == pytest.approx(prof.total_busy() * 1e9, abs=len(
        prof.folded()))   # each line rounds to the nanosecond
