"""Per-message critical-path latency attribution."""

import pytest

from repro.observability import (format_breakdown, message_lives,
                                 summarize_breakdown)
from repro.observability.breakdown import SEGMENT_ORDER
from repro.workloads.netpipe import pingpong

from tests.observability.helpers import EAGER_SIZE, RDV_SIZE, run_traced


def test_eager_lives_complete_and_exactly_attributed():
    trace = run_traced(pingpong(EAGER_SIZE, reps=3, warmup=0))
    lives = message_lives(trace)
    assert len(lives) == 6              # 3 each way
    for life in lives:
        assert life.complete
        assert life.proto == "eager"
        assert life.total > 0.0
        # eager attribution is exact: the segments tile the latency
        assert sum(life.segments().values()) == pytest.approx(life.total)


def test_rendezvous_lives_complete():
    trace = run_traced(pingpong(RDV_SIZE, reps=2, warmup=0))
    lives = message_lives(trace)
    assert len(lives) == 4
    for life in lives:
        assert life.complete            # incl. rendezvous id 0
        assert life.proto == "rdv"
        segs = life.segments()
        assert segs["network"] > 0.0
        assert segs["nmad (rendezvous)"] > 0.0
        # clamped attribution never exceeds the end-to-end latency
        assert sum(segs.values()) <= life.total + 1e-12


def test_mpich2_send_correlated():
    trace = run_traced(pingpong(EAGER_SIZE, reps=2, warmup=0))
    for life in message_lives(trace):
        assert life.t_mpi_send is not None
        assert life.t_mpi_send <= life.t_post


def test_segments_follow_declared_order():
    trace = run_traced(pingpong(RDV_SIZE, reps=1, warmup=0))
    (life, *_rest) = message_lives(trace)
    assert tuple(life.segments()) == SEGMENT_ORDER


def test_summary_counts_protocols():
    def program(comm):
        if comm.rank == 0:
            yield from comm.send(1, tag=0, size=EAGER_SIZE)
            yield from comm.send(1, tag=1, size=RDV_SIZE)
        else:
            yield from comm.recv(src=0, tag=0)
            yield from comm.recv(src=0, tag=1)

    summary = summarize_breakdown(message_lives(run_traced(program)))
    assert summary.messages == 2
    assert summary.eager == 1
    assert summary.rdv == 1
    assert summary.mean_latency > 0.0


def test_format_breakdown_table():
    trace = run_traced(pingpong(RDV_SIZE, reps=1, warmup=0))
    text = format_breakdown(message_lives(trace))
    assert "messages traced end-to-end" in text
    for name in SEGMENT_ORDER:
        assert name in text


def test_format_breakdown_empty():
    assert "no completed" in format_breakdown([])
