"""The ``repro trace`` CLI subcommand end-to-end."""

import json

from repro.cli import main
from repro.observability import LAYERS


def test_cli_trace_netpipe(tmp_path, capsys):
    out = tmp_path / "trace.json"
    assert main(["trace", "--stack", "mpich2_nmad_pioman",
                 "--workload", "netpipe", "--size", "64K",
                 "--reps", "1", "--out", str(out)]) == 0
    text = capsys.readouterr().out
    for layer in LAYERS:
        assert layer in text
    assert "per-layer latency breakdown" in text
    assert "messages traced end-to-end" in text
    assert "polls per received message" in text
    with open(out) as fh:
        doc = json.load(fh)
    layers = {e["args"]["name"] for e in doc["traceEvents"]
              if e["ph"] == "M" and e["name"] == "process_name"}
    assert set(LAYERS) <= layers


def test_cli_trace_overlap(tmp_path, capsys):
    out = tmp_path / "ov.json"
    assert main(["trace", "--workload", "overlap", "--size", "64K",
                 "--reps", "1", "--out", str(out)]) == 0
    text = capsys.readouterr().out
    assert "overlap" in text
    assert json.load(open(out))["traceEvents"]


def test_cli_trace_ring_sink(tmp_path, capsys):
    out = tmp_path / "ring.json"
    assert main(["trace", "--size", "64K", "--reps", "2",
                 "--sink", "ring", "--ring-capacity", "128",
                 "--out", str(out)]) == 0
    text = capsys.readouterr().out
    assert "ring sink: 128 retained" in text
    assert "evicted" in text
    assert "breakdown is partial" in text
    assert json.load(open(out))["traceEvents"]


def test_cli_trace_jsonl_sink_round_trips(tmp_path, capsys):
    out = tmp_path / "t.json"
    spill = tmp_path / "records.jsonl"
    assert main(["trace", "--size", "64K", "--reps", "1",
                 "--sink", "jsonl", "--jsonl", str(spill),
                 "--out", str(out)]) == 0
    text = capsys.readouterr().out
    assert "jsonl sink" in text
    # the breakdown came from the reloaded spill file, so it is complete
    assert "messages traced end-to-end" in text
    assert spill.exists()
    with open(spill) as fh:
        rows = [json.loads(line) for line in fh]
    assert rows and all("category" in row for row in rows)
    assert json.load(open(out))["traceEvents"]


def test_cli_trace_sampling(capsys, tmp_path):
    out = tmp_path / "s.json"
    assert main(["trace", "--size", "64K", "--reps", "1",
                 "--sample", "pioman=50", "--out", str(out)]) == 0
    assert "sampled out" in capsys.readouterr().out


def test_cli_profile_pingpong(tmp_path, capsys):
    folded = tmp_path / "p.folded"
    perfetto = tmp_path / "p.json"
    assert main(["profile", "mpich2_nmad", "pingpong", "--size", "64K",
                 "--reps", "2", "--folded", str(folded),
                 "--perfetto", str(perfetto)]) == 0
    text = capsys.readouterr().out
    assert "span profile:" in text
    assert "total simulated busy time" in text
    assert "engine:" in text

    # folded-stack values (ns) sum to the reported busy time (us)
    busy_us = float(next(line for line in text.splitlines()
                         if "total simulated busy time" in line)
                    .split(":")[1].split("us")[0])
    total_ns = 0
    with open(folded) as fh:
        for line in fh:
            stack, value = line.rsplit(" ", 1)
            assert ";" in stack
            total_ns += int(value)
    assert abs(total_ns / 1e3 - busy_us) < 1.0   # within report rounding

    doc = json.load(open(perfetto))
    slices = [e for e in doc["traceEvents"]
              if e["ph"] == "X" and "self_us" in e.get("args", {})]
    assert slices, "expected enriched span slices in the Perfetto export"


def test_cli_profile_collbench_ring(tmp_path, capsys):
    assert main(["profile", "mpich2_nmad", "collbench", "--np", "8",
                 "--coll", "allreduce", "--size", "1K", "--reps", "1",
                 "--sink", "ring", "--ring-capacity", "256",
                 "--folded", str(tmp_path / "c.folded"),
                 "--perfetto", str(tmp_path / "c.json")]) == 0
    text = capsys.readouterr().out
    assert "collbench/allreduce p=8" in text
    assert "ring sink: 256 retained" in text
    assert "coll.allreduce[" in text


def test_cli_profile_rejects_bad_args(tmp_path):
    import pytest

    with pytest.raises(SystemExit):
        main(["profile", "mpich2_nmad", "collbench", "--coll", "nosuch"])
    with pytest.raises(SystemExit):
        main(["profile", "nosuchstack", "pingpong"])


def test_cli_perf_renders_history(tmp_path, capsys, monkeypatch):
    history = tmp_path / "hist.jsonl"
    entry = {"datetime": "2026-01-01T00:00:00", "threshold": 0.15,
             "benches": {"bench.py::test_a": {"mean": 0.01,
                                              "base_mean": 0.012,
                                              "ratio": 1.2}},
             "regressions": [], "improvements": ["bench.py::test_a"],
             "new": []}
    history.write_text(json.dumps(entry) + "\n")
    assert main(["perf", "--history", str(history),
                 "--cache-dir", str(tmp_path / "nocache")]) == 0
    text = capsys.readouterr().out
    assert "benchmark guard history" in text
    assert "test_a" in text
    assert "1.200" in text


def test_cli_perf_no_data_fails(tmp_path, capsys):
    assert main(["perf", "--history", str(tmp_path / "none.jsonl"),
                 "--cache-dir", str(tmp_path / "nocache")]) == 1
    assert "no perf telemetry" in capsys.readouterr().out
