"""The ``repro trace`` CLI subcommand end-to-end."""

import json

from repro.cli import main
from repro.observability import LAYERS


def test_cli_trace_netpipe(tmp_path, capsys):
    out = tmp_path / "trace.json"
    assert main(["trace", "--stack", "mpich2_nmad_pioman",
                 "--workload", "netpipe", "--size", "64K",
                 "--reps", "1", "--out", str(out)]) == 0
    text = capsys.readouterr().out
    for layer in LAYERS:
        assert layer in text
    assert "per-layer latency breakdown" in text
    assert "messages traced end-to-end" in text
    assert "polls per received message" in text
    with open(out) as fh:
        doc = json.load(fh)
    layers = {e["args"]["name"] for e in doc["traceEvents"]
              if e["ph"] == "M" and e["name"] == "process_name"}
    assert set(LAYERS) <= layers


def test_cli_trace_overlap(tmp_path, capsys):
    out = tmp_path / "ov.json"
    assert main(["trace", "--workload", "overlap", "--size", "64K",
                 "--reps", "1", "--out", str(out)]) == 0
    text = capsys.readouterr().out
    assert "overlap" in text
    assert json.load(open(out))["traceEvents"]
