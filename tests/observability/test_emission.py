"""Every layer emits its documented categories during real transfers."""

from repro import config
from repro.observability import CATEGORIES, LAYERS, layer_of
from repro.workloads.netpipe import pingpong

from tests.observability.helpers import EAGER_SIZE, RDV_SIZE, run_traced


def test_eager_transfer_emits_all_layers():
    trace = run_traced(pingpong(EAGER_SIZE, reps=2, warmup=0))
    cats = set(trace.categories_seen())
    assert {"mpich2.send", "mpich2.recv_post",
            "nmad.send_post", "nmad.recv_post",
            "strategy.push", "strategy.pw_built",
            "nic.tx", "nic.rx",
            "pioman.poll", "pioman.ltask"} <= cats
    # the eager receive lands as eager_rx or via the unexpected queue
    assert cats & {"nmad.eager_rx", "nmad.unexpected_match"}
    for rec in trace.filter("nmad.send_post"):
        assert rec.data["proto"] == "eager"
        assert rec.data["size"] == EAGER_SIZE


def test_rendezvous_transfer_emits_handshake():
    trace = run_traced(pingpong(RDV_SIZE, reps=2, warmup=0))
    cats = set(trace.categories_seen())
    assert {"nmad.rts_rx", "nmad.rdv_grant", "nmad.cts_rx",
            "nmad.data_rx", "nmad.rdv_complete"} <= cats
    for rec in trace.filter("nmad.send_post"):
        assert rec.data["proto"] == "rdv"
    # RTS -> grant -> CTS -> completion, in causal order per rendezvous
    for rts in trace.filter("nmad.rts_rx"):
        rdv = rts.data["rdv"]
        (grant,) = trace.filter("nmad.rdv_grant", rdv=rdv)
        (done,) = trace.filter("nmad.rdv_complete", rdv=rdv)
        assert rts.time <= grant.time <= done.time


def test_five_distinct_layers():
    trace = run_traced(pingpong(RDV_SIZE, reps=1, warmup=0))
    layers = {layer_of(c) for c in trace.categories_seen()}
    assert set(LAYERS) <= layers


def test_every_emitted_category_is_documented():
    for size in (EAGER_SIZE, RDV_SIZE):
        trace = run_traced(pingpong(size, reps=1, warmup=0))
        for cat in trace.categories_seen():
            assert cat in CATEGORIES, f"undocumented category {cat!r}"
            assert layer_of(cat) in LAYERS


def test_seq_check_records_expected_order():
    trace = run_traced(pingpong(EAGER_SIZE, reps=3, warmup=0))
    checks = trace.filter("nmad.seq_check")
    assert checks
    for rec in checks:
        assert rec.data["seq"] == rec.data["expected"]


def test_unexpected_queue_hit_and_residency():
    def program(comm):
        if comm.rank == 0:
            yield from comm.send(1, tag=7, size=EAGER_SIZE)
        else:
            yield from comm.compute(50e-6)   # arrive before the recv posts
            yield from comm.recv(src=0, tag=7)

    trace = run_traced(program)
    assert trace.count("nmad.unexpected", kind="eager") >= 1
    matches = trace.filter("nmad.unexpected_match", kind="eager")
    assert matches
    assert all(rec.data["residency"] > 0.0 for rec in matches)


def test_anysource_scan_emitted():
    trace = run_traced(pingpong(EAGER_SIZE, reps=2, warmup=0,
                                anysource=True))
    scans = trace.filter("mpich2.anysource_scan")
    assert scans
    assert any(rec.data["hit"] for rec in scans)


def test_shared_memory_path_emits_shm_categories():
    trace = run_traced(pingpong(EAGER_SIZE, reps=2, warmup=0),
                       ranks_per_node=2)
    assert trace.count("mpich2.shm_send") >= 4      # both directions
    assert trace.count("mpich2.shm_recv") >= 4
    assert trace.count("mpich2.send", path="shm") >= 4
    assert trace.count("nic.tx") == 0               # never hit the wire


def test_netmod_path_emits_cell_copies_and_handoffs():
    trace = run_traced(pingpong(EAGER_SIZE, reps=2, warmup=0),
                       spec=config.mpich2_nmad_netmod())
    assert trace.count("mpich2.cell_copy", dir="in") >= 2
    assert trace.count("mpich2.cell_copy", dir="out") >= 2
    assert trace.count("mpich2.netmod_handoff", dir="tx", kind="eager") >= 2
    assert trace.count("mpich2.netmod_handoff", dir="rx") >= 2
    assert trace.count("mpich2.netmod_poll") >= 1


def test_netmod_rendezvous_nested_handshake():
    trace = run_traced(pingpong(RDV_SIZE, reps=1, warmup=0),
                       spec=config.mpich2_nmad_netmod())
    assert trace.count("mpich2.netmod_handoff", kind="rts") >= 1
    assert trace.count("mpich2.netmod_handoff", kind="cts") >= 1


def test_pioman_semaphore_wait_and_wake():
    trace = run_traced(pingpong(RDV_SIZE, reps=2, warmup=0))
    waits = trace.count("pioman.sem_wait")
    wakes = trace.filter("pioman.sem_wake")
    assert waits >= 1
    assert len(wakes) == waits
    assert all(rec.data["waited"] >= 0.0 for rec in wakes)


def test_multirail_split_shares():
    trace = run_traced(pingpong(RDV_SIZE, reps=1, warmup=0),
                       spec=config.mpich2_nmad(rails=("ib", "mx")))
    splits = trace.filter("strategy.split")
    assert splits
    for rec in splits:
        rails = [rail for rail, _chunk in rec.data["shares"]]
        assert len(rails) == 2
        assert sum(chunk for _rail, chunk in rec.data["shares"]) \
            == rec.data["size"]
