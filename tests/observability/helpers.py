"""Shared helpers for the observability test suite."""

from repro import config
from repro.runtime import run_mpi
from repro.simulator import Trace

#: below nmad's 16 KiB eager threshold
EAGER_SIZE = 1024
#: above every eager threshold -> rendezvous
RDV_SIZE = 256 * 1024


def run_traced(program, spec=None, nprocs=2, **kw):
    """Run ``program`` with a fresh full trace attached; return the trace.

    The default spec pins the reference progress engine: these tests
    assert the reference record stream and must not move with an
    ambient ``REPRO_PROGRESS`` (the CI engine matrix).
    """
    trace = Trace()
    run_mpi(program, nprocs,
            spec or config.mpich2_nmad_pioman(progress="pioman"),
            cluster=config.xeon_pair(), trace=trace, **kw)
    return trace
