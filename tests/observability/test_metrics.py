"""Metrics instruments, the registry, and trace-fed stack metrics."""

import pytest

from repro import config
from repro.observability import attach_metrics
from repro.observability.metrics import (Counter, Gauge, Histogram,
                                         MetricsRegistry)
from repro.runtime import run_mpi
from repro.simulator import Trace
from repro.workloads.netpipe import pingpong

from tests.observability.helpers import EAGER_SIZE, RDV_SIZE


# ---------------------------------------------------------------------------
# Instruments
# ---------------------------------------------------------------------------

def test_counter():
    c = Counter()
    c.inc()
    c.inc(2.5)
    assert c.value == 3.5


def test_gauge_high_water():
    g = Gauge()
    g.set(3)
    g.set(7)
    g.set(2)
    assert g.value == 2
    assert g.high == 7


def test_histogram():
    h = Histogram()
    for v in (1.0, 3.0, 2.0):
        h.observe(v)
    assert h.count == 3
    assert h.total == 6.0
    assert h.min == 1.0
    assert h.max == 3.0
    assert h.mean == 2.0
    assert Histogram().mean == 0.0


def test_registry_get_or_create_and_labels():
    r = MetricsRegistry()
    assert r.counter("x") is r.counter("x")
    r.counter("nic.tx_bytes", "ib").inc(10)
    r.counter("nic.tx_bytes", "mx").inc(20)
    assert set(r.labels_of("nic.tx_bytes")) == {"ib", "mx"}
    with pytest.raises(TypeError):
        r.gauge("x")            # already a counter


def test_registry_snapshot_and_table():
    r = MetricsRegistry()
    r.counter("c").inc(2)
    r.gauge("g").set(5)
    r.histogram("h").observe(1.5)
    snap = r.snapshot()
    assert snap["c"] == {"type": "counter", "value": 2}
    assert snap["g"]["high"] == 5
    assert snap["h"]["count"] == 1
    table = r.format_table()
    assert "c" in table and "high=5" in table


# ---------------------------------------------------------------------------
# Trace-fed stack metrics
# ---------------------------------------------------------------------------

def _run_metrics(program, spec=None, **kw):
    trace = Trace()
    metrics = attach_metrics(trace)
    # reference engine pinned: the hand-counted numbers below are the
    # reference record stream (see tests/observability/helpers.py)
    run_mpi(program, 2,
            spec or config.mpich2_nmad_pioman(progress="pioman"),
            cluster=config.xeon_pair(), trace=trace, **kw)
    return trace, metrics


def test_eager_counts_hand_counted():
    # rank 0 sends exactly 3 small messages; rank 1 receives 3
    def program(comm):
        for i in range(3):
            if comm.rank == 0:
                yield from comm.send(1, tag=i, size=EAGER_SIZE)
            else:
                yield from comm.recv(src=0, tag=i)

    trace, metrics = _run_metrics(program)
    r = metrics.registry
    assert r.counter("nmad.messages_sent").value == 3
    assert r.counter("nmad.messages_received").value == 3
    assert r.counter("mpich2.recv_posts").value == 3
    assert r.counter("mpich2.sends", "direct").value == 3
    # wire traffic covers at least the 3 payloads, all on the one rail
    assert r.counter("nic.tx_bytes", "ib").value >= 3 * EAGER_SIZE
    assert metrics.polls_per_message() > 0


def test_two_rail_transfer_bytes_per_rail():
    def program(comm):
        if comm.rank == 0:
            yield from comm.send(1, tag=0, size=RDV_SIZE)
        else:
            yield from comm.recv(src=0, tag=0)

    trace, metrics = _run_metrics(
        program, spec=config.mpich2_nmad(rails=("ib", "mx")))
    per_rail = metrics.bytes_per_rail()
    assert set(per_rail) == {"ib", "mx"}
    assert per_rail["ib"] > 0 and per_rail["mx"] > 0
    # the registry's totals must agree with the raw nic.tx records
    for rail, total in per_rail.items():
        assert total == sum(rec.data["size"]
                            for rec in trace.filter("nic.tx", rail=rail))
    # the striped shares account for the whole payload
    (split,) = [rec for rec in trace.filter("strategy.split")
                if rec.data["size"] == RDV_SIZE]
    assert sum(chunk for _rail, chunk in split.data["shares"]) == RDV_SIZE
    busy = metrics.nic_busy_fraction()
    assert all(0.0 < frac <= 1.0 for frac in busy.values())


def test_unexpected_residency_histogram():
    def program(comm):
        if comm.rank == 0:
            yield from comm.send(1, tag=0, size=EAGER_SIZE)
        else:
            yield from comm.compute(50e-6)
            yield from comm.recv(src=0, tag=0)

    _trace, metrics = _run_metrics(program)
    r = metrics.registry
    assert r.counter("nmad.unexpected").value >= 1
    hist = r.histogram("nmad.unexpected_residency")
    assert hist.count >= 1
    assert hist.min > 0.0


def test_format_summary_mentions_derived_views():
    trace, metrics = _run_metrics(pingpong(RDV_SIZE, reps=1, warmup=0))
    text = metrics.format_summary()
    assert "nmad.messages_sent" in text
    assert "rail ib" in text
    assert "polls per received message" in text
