"""Property tests (hypothesis) for the registration cache and the
dedicated-thread engine's work stealing.

The registration cache is checked against an independently written LRU
oracle over random register/deregister interleavings: cost accounting,
hit/miss/evict counters, capacity, and eviction *order* must all match,
and re-registering a resident region must never charge a second pin.
The cache-off mode is proven inert by record-level trace comparison
against a default (knob-less) stack.

The dedicated-thread engine is driven with random submission schedules
across several ranks' queues: no ltask may be lost or executed twice,
per-rank FIFO order must survive stealing, and a teardown at an
arbitrary time may only truncate — never duplicate or reorder.
"""

from __future__ import annotations

from collections import OrderedDict

import pytest
from hypothesis import given, settings, strategies as st

from repro import config
from repro.faults.determinism import fresh_id_space
from repro.hardware.params import MemParams, NodeParams
from repro.nmad.drivers.ib import RegistrationCache
from repro.pioman import DedicatedThreadEngine, PIOManParams
from repro.runtime import run_mpi
from repro.simulator import Simulator, Trace
from repro.threads import MarcelScheduler
from repro.workloads.netpipe import pingpong

MEM = MemParams()
CAPACITY = 4096

#: ops: ("reg", key, size) | ("dereg", key, size)
_op = st.tuples(st.sampled_from(["reg", "reg", "reg", "dereg"]),
                st.integers(min_value=0, max_value=5),
                st.sampled_from([256, 512, 1024, 2048, 4096, 8192]))


class _LruOracle:
    """Independent model of the documented pin-down cache behaviour."""

    def __init__(self, params: MemParams, capacity: int):
        self.params = params
        self.capacity = capacity
        self.regions: "OrderedDict[tuple, int]" = OrderedDict()
        self.hits = self.misses = self.evictions = 0

    def lookup(self, key, size):
        full = (key, size)
        if full in self.regions:
            self.regions.move_to_end(full)
            self.hits += 1
            return self.params.reg_cache_hit
        self.misses += 1
        cost = self.params.reg_base + size * self.params.reg_per_byte
        if size <= self.capacity:
            while (self.regions
                   and sum(self.regions.values()) + size > self.capacity):
                self.regions.popitem(last=False)
                self.evictions += 1
                cost += self.params.dereg_base
            self.regions[full] = size
        return cost

    def deregister(self, key, size):
        return self.regions.pop((key, size), None)


@given(ops=st.lists(_op, max_size=60))
@settings(max_examples=200, deadline=None)
def test_registration_cache_matches_lru_oracle(ops) -> None:
    cache = RegistrationCache(MEM, CAPACITY)
    oracle = _LruOracle(MEM, CAPACITY)
    for kind, key, size in ops:
        if kind == "reg":
            cost, info = cache.lookup(key, size)
            assert cost == pytest.approx(oracle.lookup(key, size))
            assert info["pinned"] == sum(oracle.regions.values())
            assert info["regions"] == len(oracle.regions)
        else:
            removed = cache.deregister(key, size)
            expected = oracle.deregister(key, size)
            assert (removed is None) == (expected is None)
        # invariants after every op
        assert cache.pinned_bytes == sum(oracle.regions.values())
        assert cache.pinned_bytes <= cache.capacity
        assert list(cache._regions) == list(oracle.regions)   # LRU order
        assert (cache.hits, cache.misses, cache.evictions) == \
            (oracle.hits, oracle.misses, oracle.evictions)


@given(key=st.integers(0, 3), size=st.sampled_from([256, 1024, 4096]),
       repeats=st.integers(1, 5))
@settings(max_examples=50, deadline=None)
def test_no_double_registration_charges(key, size, repeats) -> None:
    cache = RegistrationCache(MEM, CAPACITY)
    first, info = cache.lookup(key, size)
    assert not info["hit"]
    assert first == pytest.approx(MEM.reg_base + size * MEM.reg_per_byte)
    pinned = cache.pinned_bytes
    for _ in range(repeats):
        cost, info = cache.lookup(key, size)
        assert info["hit"]
        assert cost == pytest.approx(MEM.reg_cache_hit)
        assert cache.pinned_bytes == pinned      # no re-pin
    assert cache.misses == 1 and cache.hits == repeats


def test_oversized_region_registered_uncached() -> None:
    cache = RegistrationCache(MEM, CAPACITY)
    cache.lookup("small", 1024)
    cost, info = cache.lookup("huge", CAPACITY + 1)
    assert cost == pytest.approx(
        MEM.reg_base + (CAPACITY + 1) * MEM.reg_per_byte)
    assert not info["hit"] and info["evicted"] == 0
    assert cache.pinned_bytes == 1024            # resident set untouched


def test_capacity_must_be_positive() -> None:
    with pytest.raises(ValueError):
        RegistrationCache(MEM, 0)


def test_cache_off_mode_is_byte_identical_to_default() -> None:
    """``ib_reg_cache=0`` must be indistinguishable from a spec that
    never heard of the knob: identical results and record streams,
    and no ``nmad.reg_cache`` records anywhere."""
    def traced(spec):
        fresh_id_space()
        trace = Trace()
        result = run_mpi(pingpong(262144, reps=3, warmup=1), 2, spec,
                         cluster=config.xeon_pair(), trace=trace)
        return result, trace

    base_result, base_trace = traced(config.mpich2_nmad())
    off_result, off_trace = traced(config.mpich2_nmad(ib_reg_cache=0))
    assert base_result.elapsed == off_result.elapsed
    assert base_result.rank_results == off_result.rank_results
    assert base_trace.first_divergence(off_trace) is None
    assert not [r for r in off_trace if r.category == "nmad.reg_cache"]

    _, on_trace = traced(config.mpich2_nmad(ib_reg_cache=8 << 20))
    assert [r for r in on_trace if r.category == "nmad.reg_cache"]


# ---------------------------------------------------------------------------
# dedicated_thread stealing
# ---------------------------------------------------------------------------

#: submission schedule: (delay in us ticks, rank queue)
_submission = st.tuples(st.integers(min_value=0, max_value=40),
                        st.integers(min_value=0, max_value=3))


def _run_dedicated(schedule, teardown_at=None):
    """Drive the engine with a timed submission schedule; returns
    (executed ids in order, submitted ids per rank)."""
    sim = Simulator()
    sched = MarcelScheduler(sim, NodeParams(cores=2))
    engine = DedicatedThreadEngine(sim, sched, PIOManParams())
    executed = []
    submitted = {}

    def work(ltask_id):
        def gen():
            executed.append(ltask_id)
            yield sim.timeout(0.2e-6)
        return gen

    def submit(ltask_id, rank):
        submitted.setdefault(rank, []).append(ltask_id)
        engine.submit(work(ltask_id), rank=rank)

    for i, (delay, rank) in enumerate(schedule):
        sim.schedule(delay * 1e-6, submit, i, rank)
    if teardown_at is not None:
        sim.schedule(teardown_at * 1e-6, engine.teardown)
    sim.run()
    return executed, submitted


@given(schedule=st.lists(_submission, max_size=30))
@settings(max_examples=100, deadline=None)
def test_no_lost_or_double_executed_ltasks(schedule) -> None:
    executed, submitted = _run_dedicated(schedule)
    assert sorted(executed) == list(range(len(schedule)))   # exactly once
    # stealing must preserve FIFO order within each rank's queue
    for rank, ids in submitted.items():
        ran = [i for i in executed if i in set(ids)]
        assert ran == ids


@given(schedule=st.lists(_submission, max_size=30),
       teardown_at=st.integers(min_value=0, max_value=50))
@settings(max_examples=100, deadline=None)
def test_teardown_only_truncates(schedule, teardown_at) -> None:
    executed, submitted = _run_dedicated(schedule, teardown_at=teardown_at)
    assert len(executed) == len(set(executed))              # never twice
    assert len(executed) <= len(schedule)
    for rank, ids in submitted.items():
        ran = [i for i in executed if i in set(ids)]
        # a (possibly empty) prefix of the rank's submissions, in order
        assert ran == ids[:len(ran)]


def test_steals_are_counted_across_rank_queues() -> None:
    executed, _ = _run_dedicated([(0, 0), (0, 1), (0, 2)])
    sim = Simulator()
    sched = MarcelScheduler(sim, NodeParams(cores=2))
    engine = DedicatedThreadEngine(sim, sched, PIOManParams())
    for rank in (0, 1, 2):
        engine.submit(lambda: iter([sim.timeout(0.1e-6)]), rank=rank)
    sim.run()
    assert engine.ltasks_run == 3
    assert engine.steals == 2          # served rank 0, stole from 1 and 2
