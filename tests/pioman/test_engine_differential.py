"""Cross-engine differential harness for the pluggable progress layer.

The refactor of ``repro.pioman.manager`` into ``repro.pioman.engines``
is only safe because the reference engine is *provably* unchanged and
the alternatives differ only where they are documented to.  Mirroring
the scheduler harness (``tests/simulator/test_scheduler_differential``),
this enforces, at three zoom levels:

* every experiment module pinned by a merged-mode golden produces
  byte-identical canonical JSON with ``REPRO_PROGRESS`` unset vs
  pinned to the reference engine, through the real campaign machinery
  with the cache disabled — together with ``test_goldens.py`` (whose
  values predate the refactor) this proves the reference engine is
  byte-identical to the pre-refactor behaviour;
* campaign results are *immune* to the env knob (executors pin the
  engine into the point config, because results are content-addressed
  by the point alone), while fig6/fig7-style points re-executed with
  an explicit per-point engine show exactly the documented deltas:
  manual_poll strictly faster on latency, strictly slower on overlap;
  dedicated_thread never slower than the reference on either axis;
* traced preset runs compare record-by-record via
  ``Trace.first_divergence``: identical for the reference engine
  however it is selected, deterministic per engine, and genuinely
  divergent across engines (the seam is live, not cosmetic).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Tuple

import pytest

from repro import config
from repro.campaign import canonical_json, execute_point, run_campaign
from repro.campaign.cache import _as_plain
from repro.campaign.points import Point, stack_ref
from repro.faults.determinism import fresh_id_space
from repro.pioman import ENGINE_KINDS, PROGRESS_ENV
from repro.runtime import run_mpi
from repro.simulator import Trace
from repro.workloads.netpipe import pingpong

GOLDEN_DIR = Path(__file__).parents[1] / "goldens"

_MERGED_MODULES = sorted(
    golden["module"]
    for golden in (json.load(open(p)) for p in GOLDEN_DIR.glob("*.json"))
    if golden["mode"] == "merged"
)

ALTERNATIVES = ("manual_poll", "dedicated_thread")

assert set(ENGINE_KINDS) == {"pioman", "manual_poll", "dedicated_thread"}, \
    "new engine kinds must be added to this differential harness"


def _campaign_result(module: str, env: str, monkeypatch) -> str:
    if env:
        monkeypatch.setenv(PROGRESS_ENV, env)
    else:
        monkeypatch.delenv(PROGRESS_ENV, raising=False)
    fresh_id_space()     # frame/pw/rdv ids are process-global counters
    report = run_campaign(modules=[module], fast=True, cache=None)
    return canonical_json(_as_plain(report.modules[module]))


@pytest.mark.parametrize("module", _MERGED_MODULES)
def test_golden_module_bit_identical_under_reference_engine(
        module: str, monkeypatch) -> None:
    default = _campaign_result(module, "", monkeypatch)
    pinned = _campaign_result(module, "pioman", monkeypatch)
    assert default == pinned, (
        f"module {module} diverges between the default and the "
        f"explicitly selected reference engine")


def test_campaigns_are_immune_to_the_env_knob(monkeypatch) -> None:
    """The executor pins the engine: an ambient REPRO_PROGRESS must not
    change campaign results (they are content-addressed by the point
    config alone — an env-sensitive result would poison the cache)."""
    default = _campaign_result("fig6_pioman_overhead", "", monkeypatch)
    manual = _campaign_result("fig6_pioman_overhead", "manual_poll",
                              monkeypatch)
    assert default == manual


# ---------------------------------------------------------------------------
# fig6/fig7-style points re-executed per engine: the documented deltas
# ---------------------------------------------------------------------------

def _lat_point(engine: str) -> Point:
    return Point("ext_progress", f"lat/{engine}/16384", "netpipe",
                 {"stack": stack_ref("mpich2_nmad_pioman", rails=["mx"],
                                     progress=engine),
                  "size": 16384, "reps": 3})


def _overlap_point(engine: str) -> Point:
    return Point("ext_progress", f"overlap/{engine}/262144", "overlap",
                 {"stack": stack_ref("mpich2_nmad_pioman", progress=engine),
                  "size": 262144, "compute": 400e-6, "reps": 2})


def _per_engine(make_point) -> Dict[str, dict]:
    out = {}
    for engine in sorted(ENGINE_KINDS):
        fresh_id_space()
        out[engine] = execute_point(make_point(engine).config())
    return out


def test_latency_deltas_across_engines() -> None:
    lat = {e: r["latency"] for e, r in _per_engine(_lat_point).items()}
    # documented crossover: no sync overhead -> manual_poll wins latency
    assert lat["manual_poll"] < lat["pioman"]
    # no poll_period detection delay -> dedicated also beats the reference
    assert lat["dedicated_thread"] < lat["pioman"]
    assert lat["manual_poll"] < lat["dedicated_thread"]


def test_overlap_deltas_across_engines() -> None:
    snd = {e: r["sending_time"]
           for e, r in _per_engine(_overlap_point).items()}
    # documented crossover: no background progress -> manual_poll loses
    # the overlap the threaded design was built for
    assert snd["manual_poll"] > snd["pioman"]
    # a dedicated progress thread overlaps at least as well
    assert snd["dedicated_thread"] <= snd["pioman"]


def test_explicit_reference_point_matches_default() -> None:
    fresh_id_space()
    explicit = canonical_json(_as_plain(
        execute_point(_lat_point("pioman").config())))
    point = Point("ext_progress", "lat/default/16384", "netpipe",
                  {"stack": stack_ref("mpich2_nmad_pioman", rails=["mx"]),
                   "size": 16384, "reps": 3})
    fresh_id_space()
    default = canonical_json(_as_plain(execute_point(point.config())))
    assert explicit == default


# ---------------------------------------------------------------------------
# record-by-record traced preset comparison
# ---------------------------------------------------------------------------

_PRESETS = {
    "mpich2_nmad_pioman": config.mpich2_nmad_pioman,
    "mpich2_nmad_reliable": config.mpich2_nmad_reliable,
}


def _traced_pingpong(preset: str, engine) -> Tuple[object, Trace]:
    fresh_id_space()
    trace = Trace()
    result = run_mpi(pingpong(16384, reps=4, warmup=1), 2,
                     _PRESETS[preset](progress=engine),
                     cluster=config.xeon_pair(), trace=trace)
    return result, trace


@pytest.mark.parametrize("preset", sorted(_PRESETS))
def test_reference_trace_identical_to_default(
        preset: str, monkeypatch) -> None:
    monkeypatch.delenv(PROGRESS_ENV, raising=False)
    dflt_result, dflt_trace = _traced_pingpong(preset, None)
    ref_result, ref_trace = _traced_pingpong(preset, "pioman")

    assert dflt_result.elapsed == ref_result.elapsed
    assert dflt_result.sim_time == ref_result.sim_time
    assert dflt_result.rank_times == ref_result.rank_times
    assert dflt_result.rank_results == ref_result.rank_results

    div = dflt_trace.first_divergence(ref_trace)
    assert div is None, (
        f"{preset}: default vs reference engine diverges at record {div}")


@pytest.mark.parametrize("preset", sorted(_PRESETS))
@pytest.mark.parametrize("engine", sorted(ENGINE_KINDS))
def test_each_engine_is_deterministic(preset: str, engine: str) -> None:
    first_result, first_trace = _traced_pingpong(preset, engine)
    again_result, again_trace = _traced_pingpong(preset, engine)
    assert first_result.elapsed == again_result.elapsed
    assert first_result.rank_results == again_result.rank_results
    div = first_trace.first_divergence(again_trace)
    assert div is None, f"{preset}/{engine}: nondeterministic at {div}"


@pytest.mark.parametrize("preset", sorted(_PRESETS))
@pytest.mark.parametrize("engine", sorted(ALTERNATIVES))
def test_alternative_engines_genuinely_diverge(
        preset: str, engine: str) -> None:
    """The seam is live: alternatives change the record stream."""
    _, ref_trace = _traced_pingpong(preset, "pioman")
    alt_result, alt_trace = _traced_pingpong(preset, engine)
    assert alt_result.elapsed > 0
    assert ref_trace.first_divergence(alt_trace) is not None
