"""Race-detector coverage across progress engines.

Every engine reshuffles *when* protocol work runs (background worker,
application thread, dedicated stealer), so each one exercises different
interleavings of the same shared state — and all of them must stay
race-free on both stack presets.  A seeded true positive routed
*through* each engine's ltask path proves the detector still sees real
races identically whichever engine carried the racy write: the engines
may not hide a race behind their own queue handling.

Mirrors PR 9's scheduler race-equivalence suite
(``tests/simulator/test_scheduler_race_equivalence.py``).
"""

from __future__ import annotations

import pytest

from repro import config
from repro.analysis.race import RaceDetector, run_race
from repro.hardware.params import NodeParams
from repro.pioman import ENGINE_KINDS, make_engine
from repro.simulator import Simulator
from repro.threads import MarcelScheduler

_PRESETS = {
    "mpich2_nmad": config.mpich2_nmad,
    "mpich2_nmad_reliable": config.mpich2_nmad_reliable,
}


def _report_shape(report):
    """Every comparable observable of a race report."""
    return {
        "accesses": report.accesses,
        "contexts": report.contexts,
        "syncs": report.syncs,
        "variables": report.variables,
        "dropped": report.dropped,
        "races": [(r.var,
                   r.first.ctx_name, r.first.write, r.first.tick,
                   r.second.ctx_name, r.second.write, r.second.tick)
                  for r in report.races],
    }


@pytest.mark.parametrize("preset", sorted(_PRESETS))
@pytest.mark.parametrize("engine", sorted(ENGINE_KINDS))
def test_presets_race_free_under_every_engine(preset, engine) -> None:
    report = run_race(_PRESETS[preset](progress=engine),
                      size=16384, reps=2)
    assert report.accesses > 50, \
        f"{engine}: instrumentation did not fire"
    assert report.clean, f"{engine}: {report.format_text()}"


def _seeded_racy_run(engine_kind):
    """One true race whose racy write travels through the engine.

    The writer is an *ltask* submitted to the engine under test; the
    reader reads ``shared`` with no ordering edge to it.  A second
    variable is handed off through an event so every engine also shows
    an ordered (non-racy) pair.  For background engines the ltask runs
    on the engine's worker; for ``manual_poll`` a separate *poller*
    task drains it (a second rank inside the library) — in every case
    the racy write lands in a context distinct from the reader's.
    """
    detector = RaceDetector()
    sim = Simulator()
    detector.install(sim)
    sched = MarcelScheduler(sim, NodeParams(cores=2))
    engine = make_engine(engine_kind, sim, sched)
    done = sim.event()

    def racy_ltask():
        sim.race_write("shared")               # racy: no edge to reader
        sim.race_write("handed-off")
        done.succeed()
        yield sim.timeout(0)

    def submitter():
        yield sim.timeout(1e-6)
        engine.submit(racy_ltask, rank=0)

    def poller():
        yield sim.timeout(1.5e-6)
        yield from engine.progress()           # manual_poll drains here

    def reader():
        yield sim.timeout(2e-6)
        sim.race_read("shared")

    def follower():
        yield done                             # ordered: via the event
        sim.race_read("handed-off")

    sim.spawn(submitter(), name="submitter")
    sim.spawn(poller(), name="poller")
    sim.spawn(reader(), name="reader")
    sim.spawn(follower(), name="follower")
    sim.run()
    return detector.report()


def test_seeded_race_found_identically_under_all_engines() -> None:
    shapes = {kind: _report_shape(_seeded_racy_run(kind))
              for kind in sorted(ENGINE_KINDS)}
    for kind, shape in shapes.items():
        assert [r[0] for r in shape["races"]] == ["shared"], (
            f"{kind}: expected exactly the seeded race, got "
            f"{shape['races']}")
    # every engine reports the same racy variable set; tick/context
    # detail legitimately differs with *where* the ltask ran
    race_vars = {kind: sorted({r[0] for r in shape["races"]})
                 for kind, shape in shapes.items()}
    assert len(set(map(tuple, race_vars.values()))) == 1
