"""Unit tests for the PIOMan manager."""

import pytest

from repro.hardware.params import NodeParams
from repro.pioman import PIOMan, PIOManParams
from repro.simulator import Simulator
from repro.threads import MarcelScheduler


def make_pioman(cores=2, **param_overrides):
    sim = Simulator()
    sched = MarcelScheduler(sim, NodeParams(cores=cores))
    params = PIOManParams(**param_overrides)
    return sim, sched, PIOMan(sim, sched, params)


def test_ltask_runs_in_background_with_idle_core():
    sim, sched, pm = make_pioman(cores=2, poll_period=1e-6, ltask_cost=0.1e-6)
    ran = []

    def work():
        yield sim.timeout(2e-6)
        ran.append(sim.now)

    pm.submit(work)
    sim.run()
    # poll_period + ltask_cost + work duration
    assert ran == [pytest.approx(3.1e-6)]
    assert pm.ltasks_run == 1


def test_ltask_waits_for_core_when_fully_loaded():
    sim, sched, pm = make_pioman(cores=1, poll_period=1e-6, ltask_cost=0.0)
    ran = []

    def hog():
        yield sched.acquire_core()
        yield from sched.compute(100e-6)
        sched.release_core()

    def work():
        ran.append(sim.now)
        yield sim.timeout(0)

    sched.spawn(hog())

    def submitter():
        yield sim.timeout(10e-6)
        pm.submit(work)

    sim.spawn(submitter())
    sim.run()
    # the worker could not start until the hog released its core at 100us
    assert ran[0] >= 100e-6


def test_ltasks_drain_in_fifo_order():
    sim, sched, pm = make_pioman()
    order = []

    def work(tag):
        def gen():
            order.append(tag)
            yield sim.timeout(0)
        return gen

    pm.submit(work("a"))
    pm.submit(work("b"))
    pm.submit(work("c"))
    sim.run()
    assert order == ["a", "b", "c"]


def test_worker_restarts_after_drain():
    sim, sched, pm = make_pioman(poll_period=1e-6, ltask_cost=0.0)
    ran = []

    def work():
        ran.append(sim.now)
        yield sim.timeout(0)

    pm.submit(work)

    def late_submitter():
        yield sim.timeout(50e-6)
        pm.submit(work)

    sim.spawn(late_submitter())
    sim.run()
    assert len(ran) == 2
    assert ran[1] == pytest.approx(51e-6)


def test_semaphore_wait_releases_core():
    """A blocked waiter's core must be usable by the pioman worker."""
    sim, sched, pm = make_pioman(cores=1, poll_period=0.0, ltask_cost=0.0, wakeup_cost=0.0)
    log = []
    evt = sim.event()

    def app():
        yield sched.acquire_core()
        yield from pm.semaphore_wait(evt)
        log.append(("woke", sim.now))
        sched.release_core()

    def work():
        log.append(("ltask", sim.now))
        evt.succeed()
        yield sim.timeout(0)

    sched.spawn(app())

    def submitter():
        yield sim.timeout(5e-6)
        pm.submit(work)

    sim.spawn(submitter())
    sim.run()
    # With only one core, the ltask could only run because app released it.
    assert log[0] == ("ltask", pytest.approx(5e-6))
    assert log[1][0] == "woke"


def test_semaphore_wait_on_triggered_event_returns_fast():
    sim, sched, pm = make_pioman(cores=1)
    evt = sim.event()
    evt.succeed()
    done = []

    def app():
        yield sched.acquire_core()
        yield from pm.semaphore_wait(evt)
        done.append(sim.now)
        sched.release_core()

    sched.spawn(app())
    sim.run()
    assert done == [0.0]


def test_wakeup_cost_charged():
    sim, sched, pm = make_pioman(cores=2, wakeup_cost=1e-6)
    evt = sim.event()
    done = []

    def app():
        yield sched.acquire_core()
        yield from pm.semaphore_wait(evt)
        done.append(sim.now)
        sched.release_core()

    sched.spawn(app())
    sim.schedule(10e-6, evt.succeed)
    sim.run()
    assert done == [pytest.approx(11e-6)]


# ---------------------------------------------------------------------------
# engine-contract edge cases exposed by the pluggable refactor
# ---------------------------------------------------------------------------

def make_engine_under_test(kind, cores=2, **param_overrides):
    from repro.pioman import make_engine

    sim = Simulator()
    sched = MarcelScheduler(sim, NodeParams(cores=cores))
    params = PIOManParams(**param_overrides)
    return sim, sched, make_engine(kind, sim, sched, params)


def test_reference_progress_is_a_noop():
    """Background engines do nothing on application-side progress."""
    sim, sched, pm = make_pioman()
    assert list(pm.progress()) == []
    assert pm.ltasks_run == 0


def test_manual_poll_empty_queue_progress_completes():
    """Polling an empty ltask queue must terminate without charges."""
    sim, sched, engine = make_engine_under_test("manual_poll")
    done = []

    def app():
        yield sim.timeout(1e-6)
        yield from engine.progress()
        done.append(sim.now)

    sim.spawn(app())
    sim.run()
    # no queued work -> no ltask_cost, no sync region, no time passes
    assert done == [pytest.approx(1e-6)]
    assert engine.ltasks_run == 0


def test_manual_poll_semaphore_wait_empty_queue_blocks_until_event():
    sim, sched, engine = make_engine_under_test("manual_poll")
    evt = sim.event()
    woke = []

    def app():
        yield sched.acquire_core()
        yield from engine.semaphore_wait(evt)
        woke.append(sim.now)
        sched.release_core()

    sched.spawn(app())
    sim.schedule(7e-6, evt.succeed)
    sim.run()
    # no wakeup_cost in manual mode: the waiter was spinning, not parked
    assert woke == [pytest.approx(7e-6)]


def test_dedicated_completion_during_steal():
    """An ltask stolen from another rank's queue completes a waiter while
    the worker is still draining; nothing is lost or run twice."""
    sim, sched, engine = make_engine_under_test(
        "dedicated_thread", cores=2, ltask_cost=0.1e-6, wakeup_cost=0.05e-6)
    evt = sim.event()
    log = []

    def slow_ltask():
        log.append(("slow", sim.now))
        yield sim.timeout(5e-6)

    def completing_ltask():
        log.append(("complete", sim.now))
        evt.succeed()
        yield sim.timeout(0)

    def trailing_ltask():
        log.append(("trail", sim.now))
        yield sim.timeout(0)

    def app():
        yield sched.acquire_core()
        engine.submit(slow_ltask, rank=0)
        engine.submit(completing_ltask, rank=1)   # stolen mid-drain
        engine.submit(trailing_ltask, rank=0)
        yield from engine.semaphore_wait(evt)
        log.append(("woke", sim.now))
        sched.release_core()

    sched.spawn(app())
    sim.run()
    # rank 0's queue drains FIFO first, then the worker steals rank 1's
    # completing ltask, which wakes the parked waiter
    assert [tag for tag, _ in log] == ["slow", "trail", "complete", "woke"]
    assert engine.ltasks_run == 3
    assert engine.steals >= 1                    # rank 1's queue was robbed
    woke_at = dict((tag, t) for tag, t in log)["woke"]
    completed_at = dict((tag, t) for tag, t in log)["complete"]
    assert woke_at == pytest.approx(completed_at + 0.05e-6)  # wakeup_cost


@pytest.mark.parametrize("kind", ["pioman", "manual_poll",
                                  "dedicated_thread"])
def test_teardown_with_inflight_health_check(kind):
    """Reliability health checks ride the engine as ltasks; tearing the
    engine down with a check still queued must drop it cleanly — the
    rail is neither declared dead nor the simulation wedged."""
    from types import SimpleNamespace

    from repro.nmad.reliability import RailHealthMonitor, ReliabilityParams

    class _Driver:                               # hashable, unlike a
        alive = True                             # SimpleNamespace

    sim, sched, engine = make_engine_under_test(kind)
    core = SimpleNamespace(sim=sim, rank=0, node_id=sched.node_id)
    monitor = RailHealthMonitor(core, ReliabilityParams(), pioman=engine)
    driver = _Driver()

    monitor.rail_suspect(driver)                 # queues the check ltask
    engine.teardown()                            # ...which must be dropped
    sim.run()
    assert driver.alive
    assert engine.ltasks_run == 0


@pytest.mark.parametrize("kind", ["pioman", "manual_poll",
                                  "dedicated_thread"])
def test_submit_after_teardown_is_ignored(kind):
    sim, sched, engine = make_engine_under_test(kind)
    engine.teardown()
    ran = []

    def work():
        ran.append(sim.now)
        yield sim.timeout(0)

    def app():
        yield sim.timeout(1e-6)
        engine.submit(work, rank=0)
        yield from engine.progress()

    sim.spawn(app())
    sim.run()
    # pioman's reference teardown only clears the queue (its worker drains
    # on the spot), so a post-teardown submit may still run there; the
    # alternative engines must drop it
    if kind != "pioman":
        assert ran == []
    assert sim.now >= 1e-6


def test_manual_poll_two_waiters_share_the_arrival_signal():
    """Regression: two threads parked in semaphore_wait on the same
    node engine must both wake on a submit — a fresh signal per waiter
    orphans the earlier one (deadlock with several ranks per node)."""
    sim, sched, engine = make_engine_under_test("manual_poll", cores=4)
    evts = [sim.event(), sim.event()]
    woke = []

    def waiter(i):
        yield sched.acquire_core()
        yield from engine.semaphore_wait(evts[i])
        woke.append(i)
        sched.release_core()

    def completer(i):
        def gen():
            evts[i].succeed()
            yield sim.timeout(0)
        return gen

    sched.spawn(waiter(0))
    sched.spawn(waiter(1))
    # complete waiter 1 first, then waiter 0: each submit must reach
    # whichever waiters are parked at that moment
    sim.schedule(2e-6, engine.submit, completer(1))
    sim.schedule(4e-6, engine.submit, completer(0))
    sim.run()
    assert sorted(woke) == [0, 1]
