"""Unit tests for the PIOMan manager."""

import pytest

from repro.hardware.params import NodeParams
from repro.pioman import PIOMan, PIOManParams
from repro.simulator import Simulator
from repro.threads import MarcelScheduler


def make_pioman(cores=2, **param_overrides):
    sim = Simulator()
    sched = MarcelScheduler(sim, NodeParams(cores=cores))
    params = PIOManParams(**param_overrides)
    return sim, sched, PIOMan(sim, sched, params)


def test_ltask_runs_in_background_with_idle_core():
    sim, sched, pm = make_pioman(cores=2, poll_period=1e-6, ltask_cost=0.1e-6)
    ran = []

    def work():
        yield sim.timeout(2e-6)
        ran.append(sim.now)

    pm.submit(work)
    sim.run()
    # poll_period + ltask_cost + work duration
    assert ran == [pytest.approx(3.1e-6)]
    assert pm.ltasks_run == 1


def test_ltask_waits_for_core_when_fully_loaded():
    sim, sched, pm = make_pioman(cores=1, poll_period=1e-6, ltask_cost=0.0)
    ran = []

    def hog():
        yield sched.acquire_core()
        yield from sched.compute(100e-6)
        sched.release_core()

    def work():
        ran.append(sim.now)
        yield sim.timeout(0)

    sched.spawn(hog())

    def submitter():
        yield sim.timeout(10e-6)
        pm.submit(work)

    sim.spawn(submitter())
    sim.run()
    # the worker could not start until the hog released its core at 100us
    assert ran[0] >= 100e-6


def test_ltasks_drain_in_fifo_order():
    sim, sched, pm = make_pioman()
    order = []

    def work(tag):
        def gen():
            order.append(tag)
            yield sim.timeout(0)
        return gen

    pm.submit(work("a"))
    pm.submit(work("b"))
    pm.submit(work("c"))
    sim.run()
    assert order == ["a", "b", "c"]


def test_worker_restarts_after_drain():
    sim, sched, pm = make_pioman(poll_period=1e-6, ltask_cost=0.0)
    ran = []

    def work():
        ran.append(sim.now)
        yield sim.timeout(0)

    pm.submit(work)

    def late_submitter():
        yield sim.timeout(50e-6)
        pm.submit(work)

    sim.spawn(late_submitter())
    sim.run()
    assert len(ran) == 2
    assert ran[1] == pytest.approx(51e-6)


def test_semaphore_wait_releases_core():
    """A blocked waiter's core must be usable by the pioman worker."""
    sim, sched, pm = make_pioman(cores=1, poll_period=0.0, ltask_cost=0.0, wakeup_cost=0.0)
    log = []
    evt = sim.event()

    def app():
        yield sched.acquire_core()
        yield from pm.semaphore_wait(evt)
        log.append(("woke", sim.now))
        sched.release_core()

    def work():
        log.append(("ltask", sim.now))
        evt.succeed()
        yield sim.timeout(0)

    sched.spawn(app())

    def submitter():
        yield sim.timeout(5e-6)
        pm.submit(work)

    sim.spawn(submitter())
    sim.run()
    # With only one core, the ltask could only run because app released it.
    assert log[0] == ("ltask", pytest.approx(5e-6))
    assert log[1][0] == "woke"


def test_semaphore_wait_on_triggered_event_returns_fast():
    sim, sched, pm = make_pioman(cores=1)
    evt = sim.event()
    evt.succeed()
    done = []

    def app():
        yield sched.acquire_core()
        yield from pm.semaphore_wait(evt)
        done.append(sim.now)
        sched.release_core()

    sched.spawn(app())
    sim.run()
    assert done == [0.0]


def test_wakeup_cost_charged():
    sim, sched, pm = make_pioman(cores=2, wakeup_cost=1e-6)
    evt = sim.event()
    done = []

    def app():
        yield sched.acquire_core()
        yield from pm.semaphore_wait(evt)
        done.append(sim.now)
        sched.release_core()

    sched.spawn(app())
    sim.schedule(10e-6, evt.succeed)
    sim.run()
    assert done == [pytest.approx(11e-6)]
