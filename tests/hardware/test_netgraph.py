"""Unit tests for the topology-aware fabrics (repro.hardware.netgraph)."""

from __future__ import annotations

import pytest

from repro import config
from repro.hardware import presets as hw
from repro.hardware.netgraph import (
    PRESETS,
    BackgroundTraffic,
    NetGraph,
    RoutedFabric,
    TopologySpec,
    fattree,
    mesh2d,
    parse_topology,
    ring,
    torus2d,
)
from repro.hardware.nic import Fabric, Frame
from repro.hardware.topology import build_cluster
from repro.runtime import run_mpi
from repro.simulator import Simulator


def pingpong(size):
    def program(comm):
        if comm.rank == 0:
            yield from comm.send(1, tag=1, size=size)
            yield from comm.recv(src=1, tag=2)
        elif comm.rank == 1:
            yield from comm.recv(src=0, tag=1)
            yield from comm.send(0, tag=2, size=size)
    return program


# -- spec ---------------------------------------------------------------

class TestTopologySpec:
    def test_validation(self):
        with pytest.raises(ValueError, match="unknown topology kind"):
            TopologySpec("hypercube", (4,))
        with pytest.raises(ValueError, match="dimension"):
            TopologySpec("ring", ())
        with pytest.raises(ValueError, match="dimension"):
            TopologySpec("torus2d", (4,))
        with pytest.raises(ValueError, match="dimension"):
            TopologySpec("mesh2d", (1, 4))
        with pytest.raises(ValueError, match="even"):
            TopologySpec("fattree", (3,))

    def test_capacity_and_name(self):
        assert ring(8).capacity == 8
        assert torus2d(4, 4).capacity == 16
        assert fattree(4).capacity == 16
        assert fattree(4).name == "fattree:4"
        assert torus2d(2, 4).name == "torus2d:2x4"
        assert ring(6).name == "ring:6"

    def test_dict_round_trip(self):
        spec = torus2d(2, 4, link_bandwidth=1e9, hop_latency=1e-6)
        assert TopologySpec.from_dict(spec.to_dict()) == spec
        bare = ring(8)
        assert "link_bandwidth" not in bare.to_dict()
        assert TopologySpec.from_dict(bare.to_dict()) == bare

    def test_parse(self):
        assert parse_topology("flat") is None
        assert parse_topology("none") is None
        assert parse_topology("") is None
        assert parse_topology("ring:8") == ring(8)
        assert parse_topology("TORUS2D:4x4") == torus2d(4, 4)
        assert parse_topology("fattree:4") == fattree(4)
        with pytest.raises(ValueError, match="expected KIND:DIMS"):
            parse_topology("torus2d")
        with pytest.raises(ValueError, match="dims"):
            parse_topology("ring:abc")


# -- graph shape and routing -------------------------------------------

class TestNetGraph:
    def test_shapes(self):
        cases = {
            "ring8": (8, 0, 16),
            "mesh4x4": (16, 0, 48),
            "torus4x4": (16, 0, 64),
            "fattree4": (16, 20, 96),
        }
        for preset, (nodes, switches, links) in cases.items():
            d = NetGraph(PRESETS[preset], hw.IB_CONNECTX).describe()
            assert (d["nodes"], d["switches"], d["links"]) == (
                nodes, switches, links), preset

    def test_link_parameter_defaults(self):
        g = NetGraph(ring(4), hw.IB_CONNECTX)
        link = g.links[0]
        assert link.bandwidth == hw.IB_CONNECTX.bandwidth
        assert link.latency == hw.IB_CONNECTX.wire_latency / 2
        tuned = NetGraph(ring(4, link_bandwidth=1e9, hop_latency=2e-6),
                         hw.IB_CONNECTX)
        assert tuned.links[0].bandwidth == 1e9
        assert tuned.links[0].latency == 2e-6

    def test_ring_tie_breaks_clockwise(self):
        g = NetGraph(ring(4), hw.IB_CONNECTX)
        assert [l.name for l in g.route(3, 1)] == ["n3>n0", "n0>n1"]
        assert [l.name for l in g.route(0, 3)] == ["n0>n3"]

    def test_torus_dimension_order_and_wraparound(self):
        g = NetGraph(torus2d(4, 4), hw.IB_CONNECTX)
        # 0 -> 15: X wraps 0->3 (one hop), then Y wraps 3->15 (one hop)
        assert [l.name for l in g.route(0, 15)] == ["n0>n3", "n3>n15"]

    def test_fattree_same_edge_stays_local(self):
        g = NetGraph(fattree(4), hw.IB_CONNECTX)
        assert [l.name for l in g.route(0, 1)] == ["h0>e0", "e0>h1"]
        cross_pod = g.route(0, 15)
        assert len(cross_pod) == 6
        assert any(l.src.startswith("c") or l.dst.startswith("c")
                   for l in cross_pod)

    def test_diameters(self):
        assert NetGraph(ring(8), hw.IB_CONNECTX).describe()[
            "diameter_hops"] == 4
        assert NetGraph(torus2d(4, 4), hw.IB_CONNECTX).describe()[
            "diameter_hops"] == 4
        assert NetGraph(mesh2d(4, 4), hw.IB_CONNECTX).describe()[
            "diameter_hops"] == 6
        assert NetGraph(fattree(4), hw.IB_CONNECTX).describe()[
            "diameter_hops"] == 6

    def test_ascii_art_renders(self):
        for preset in PRESETS.values():
            art = NetGraph(preset, hw.IB_CONNECTX).ascii_art()
            assert art.strip()


# -- routed fabric -----------------------------------------------------

class TestRoutedFabric:
    def test_flat_fabric_reports_zero_delay(self):
        sim = Simulator()
        fab = Fabric(sim, hw.IB_CONNECTX)
        assert fab.observed_source_delay(0) == 0.0
        assert fab.topology is None

    def test_build_cluster_capacity_check(self):
        sim = Simulator()
        with pytest.raises(ValueError, match="holds 4"):
            build_cluster(sim, 8, hw.XEON_NODE, [hw.IB_CONNECTX],
                          topology=ring(4))

    def test_topo_rails_selects_rails(self):
        sim = Simulator()
        cluster = build_cluster(sim, 4, hw.XEON_NODE,
                                [hw.IB_CONNECTX, hw.MX_MYRI10G],
                                topology=ring(4), topo_rails=("mx",))
        assert isinstance(cluster.fabrics["mx"], RoutedFabric)
        assert not isinstance(cluster.fabrics["ib"], RoutedFabric)
        assert cluster.fabrics["mx"].topology == ring(4)

    def test_multi_hop_costs_more_than_flat(self):
        size = 65536
        flat = run_mpi(pingpong(size), 2, config.mpich2_nmad(),
                       cluster=config.ClusterSpec(n_nodes=4))
        routed = run_mpi(pingpong(size), 2, config.mpich2_nmad(),
                         cluster=config.ClusterSpec(n_nodes=4,
                                                    topology=ring(4)))
        assert routed.elapsed > flat.elapsed

    def test_links_contend(self):
        """Two frames crossing one link serialize; stats record it."""
        sim = Simulator()
        fab = RoutedFabric(sim, hw.IB_CONNECTX, ring(4))
        for node in range(4):
            fab.attach(node)
        got = []
        fab.nic(2)._deliver = lambda f: got.append((sim.now, f))
        # both frames need link n1>n2 at t=0: the second queues
        fab.deliver(Frame(src=1, dst=2, size=4096))
        fab.deliver(Frame(src=1, dst=2, size=4096))
        sim.run()
        assert len(got) == 2
        link = fab.graph._link("n1", "n2")
        assert link.frames == 2
        assert link.max_queued == 2
        assert link.queue_delay > 0
        assert got[1][0] > got[0][0]

    def test_background_traffic_requires_routed_fabric(self):
        sim = Simulator()
        flat = Fabric(sim, hw.IB_CONNECTX)
        with pytest.raises(TypeError, match="RoutedFabric"):
            BackgroundTraffic(flat, 0, 1, 4096, 1e-6, 1)
        fab = RoutedFabric(sim, hw.IB_CONNECTX, ring(4))
        with pytest.raises(ValueError):
            BackgroundTraffic(fab, 0, 1, 4096, 0.0, 1)

    def test_background_traffic_congests_but_never_delivers(self):
        sim = Simulator()
        fab = RoutedFabric(sim, hw.IB_CONNECTX, ring(4))
        for node in range(4):
            fab.attach(node)
        delivered = []
        fab.nic(1)._deliver = lambda f: delivered.append(f)
        bg = BackgroundTraffic(fab, src=3, dst=1, size=1 << 20,
                               period=1e-5, count=10).install()
        sim.run()
        assert bg.injected == 10
        assert delivered == []       # pure interference
        # ring 3->1 ties and breaks clockwise: 3->0->1 charges n0>n1
        assert fab.graph._link("n0", "n1").frames == 10

    def test_observed_delay_ewma_rises_under_congestion(self):
        sim = Simulator()
        fab = RoutedFabric(sim, hw.IB_CONNECTX, ring(4))
        for node in range(4):
            fab.attach(node)
        fab.nic(1)._deliver = lambda f: None
        BackgroundTraffic(fab, src=3, dst=1, size=1 << 20,
                          period=1e-5, count=50).install()
        assert fab.observed_source_delay(0) == 0.0
        # probe once the interference backlog occupies n0>n1 (each 1 MiB
        # bg frame serializes for ~700 us, so the link saturates early)
        for i in range(4):
            sim.at(2e-3 + i * 2e-3, fab.deliver,
                   Frame(src=0, dst=1, size=65536))
        sim.run()
        assert fab.observed_source_delay(0) > 0.0
        assert fab.observed_source_delay(2) == 0.0   # other sources clean

    def test_link_report_lists_only_used_links(self):
        sim = Simulator()
        fab = RoutedFabric(sim, hw.IB_CONNECTX, torus2d(2, 2))
        for node in range(4):
            fab.attach(node)
        fab.nic(3)._deliver = lambda f: None
        fab.deliver(Frame(src=0, dst=3, size=4096))
        sim.run()
        report = fab.link_report()
        assert report
        assert all(row["frames"] > 0 for row in report)
        names = [row["link"] for row in report]
        assert names == sorted(names)
