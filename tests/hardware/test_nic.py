"""Unit tests for NIC/fabric models."""

import pytest

from repro.hardware import Fabric, Frame, NICParams
from repro.simulator import Simulator


def make_params(**kw):
    base = dict(
        name="test",
        post_overhead=0.1e-6,
        recv_overhead=0.1e-6,
        wire_latency=1.0e-6,
        bandwidth=1e9,
        per_message_gap=0.05e-6,
        max_inline=128,
        dma_setup=0.2e-6,
    )
    base.update(kw)
    return NICParams(**base)


def build_pair(params=None):
    sim = Simulator()
    fabric = Fabric(sim, params or make_params())
    nic0, nic1 = fabric.attach(0), fabric.attach(1)
    return sim, fabric, nic0, nic1


def test_injection_time_small_message_is_inline():
    p = make_params()
    # 64 <= max_inline: no dma_setup
    assert p.injection_time(64) == pytest.approx(0.05e-6 + 64 / 1e9)


def test_injection_time_large_message_pays_dma_setup():
    p = make_params()
    assert p.injection_time(4096) == pytest.approx(0.05e-6 + 0.2e-6 + 4096 / 1e9)


def test_transfer_time_adds_wire_latency():
    p = make_params()
    assert p.transfer_time(64) == pytest.approx(p.injection_time(64) + 1.0e-6)


def test_frame_arrives_after_injection_plus_wire():
    sim, fabric, nic0, nic1 = build_pair()
    arrived = []
    nic1.rx_notify = lambda f: arrived.append((sim.now, f))
    nic0.post_send(Frame(src=0, dst=1, size=64))
    sim.run()
    expected = nic0.params.injection_time(64) + nic0.params.wire_latency
    assert arrived[0][0] == pytest.approx(expected)
    assert arrived[0][1].size == 64


def test_local_completion_at_injection_end():
    sim, fabric, nic0, nic1 = build_pair()
    done_at = []
    evt = nic0.post_send(Frame(src=0, dst=1, size=1000))
    evt.add_done_callback(lambda e: done_at.append(sim.now))
    sim.run()
    assert done_at[0] == pytest.approx(nic0.params.injection_time(1000))


def test_back_to_back_sends_serialize():
    sim, fabric, nic0, nic1 = build_pair()
    arrivals = []
    nic1.rx_notify = lambda f: arrivals.append(sim.now)
    nic0.post_send(Frame(src=0, dst=1, size=1000))
    nic0.post_send(Frame(src=0, dst=1, size=1000))
    sim.run()
    inj = nic0.params.injection_time(1000)
    wire = nic0.params.wire_latency
    assert arrivals[0] == pytest.approx(inj + wire)
    assert arrivals[1] == pytest.approx(2 * inj + wire)


def test_frames_delivered_in_order():
    sim, fabric, nic0, nic1 = build_pair()
    order = []
    nic1.rx_notify = lambda f: order.append(f.frame_id)
    frames = [Frame(src=0, dst=1, size=100) for _ in range(5)]
    for f in frames:
        nic0.post_send(f)
    sim.run()
    assert order == [f.frame_id for f in frames]


def test_rx_queue_holds_frames_without_notify():
    sim, fabric, nic0, nic1 = build_pair()
    nic0.post_send(Frame(src=0, dst=1, size=10, kind="eager", payload="hi"))
    sim.run()
    assert len(nic1.rx_queue) == 1
    frame = nic1.rx_queue.try_get()
    assert frame.payload == "hi"
    assert frame.kind == "eager"
    assert frame.rail == "test"


def test_wrong_source_node_rejected():
    sim, fabric, nic0, nic1 = build_pair()
    with pytest.raises(ValueError):
        nic0.post_send(Frame(src=1, dst=0, size=10))


def test_unknown_destination_raises_at_delivery():
    sim, fabric, nic0, nic1 = build_pair()
    nic0.post_send(Frame(src=0, dst=7, size=10))
    with pytest.raises(ValueError):
        sim.run()


def test_duplicate_attach_rejected():
    sim, fabric, nic0, nic1 = build_pair()
    with pytest.raises(ValueError):
        fabric.attach(0)


def test_tx_stats_accumulate():
    sim, fabric, nic0, nic1 = build_pair()
    nic0.post_send(Frame(src=0, dst=1, size=100))
    nic0.post_send(Frame(src=0, dst=1, size=200))
    sim.run()
    assert nic0.tx_frames == 2
    assert nic0.tx_bytes == 300
    assert nic1.rx_frames == 2
    assert nic1.rx_bytes == 300


def test_tx_busy_and_idle_at():
    sim, fabric, nic0, nic1 = build_pair()
    assert not nic0.tx_busy
    nic0.post_send(Frame(src=0, dst=1, size=10_000))
    assert nic0.tx_busy
    assert nic0.tx_idle_at() == pytest.approx(nic0.params.injection_time(10_000))
    sim.run()
    assert not nic0.tx_busy


def test_bidirectional_traffic_independent():
    sim, fabric, nic0, nic1 = build_pair()
    t = []
    nic0.rx_notify = lambda f: t.append(("at0", sim.now))
    nic1.rx_notify = lambda f: t.append(("at1", sim.now))
    nic0.post_send(Frame(src=0, dst=1, size=100))
    nic1.post_send(Frame(src=1, dst=0, size=100))
    sim.run()
    # full duplex: both arrive at the same time
    assert t[0][1] == pytest.approx(t[1][1])
