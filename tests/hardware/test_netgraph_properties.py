"""Property tests (hypothesis) for routed-fabric route computation.

The routing contracts:

* every route is a contiguous chain from the source's attachment point
  to the destination's, with no repeated vertex (loop-free);
* mesh/torus dimension-ordered routes are minimal: their hop count
  equals the (wraparound-aware) Manhattan distance;
* ring routes take the shorter direction;
* fat-tree up/down routes never bounce (up links never follow a down
  link) and stay within the 2/4/6-hop shape of a 3-level tree;
* routing is deterministic: the same (src, dst) always yields the
  same links.
"""

from __future__ import annotations

from typing import List, Tuple

from hypothesis import given, settings, strategies as st

from repro.hardware import presets as hw
from repro.hardware.netgraph import (
    NetGraph,
    TopologySpec,
    fattree,
    mesh2d,
    ring,
    torus2d,
)

dims_st = st.tuples(st.integers(min_value=2, max_value=5),
                    st.integers(min_value=2, max_value=5))


def _graph(spec: TopologySpec) -> NetGraph:
    return NetGraph(spec, hw.IB_CONNECTX)


def _endpoints(draw, capacity: int) -> Tuple[int, int]:
    src = draw(st.integers(min_value=0, max_value=capacity - 1))
    dst = draw(st.integers(min_value=0, max_value=capacity - 1))
    return src, dst


def _check_chain(graph: NetGraph, src: int, dst: int) -> List:
    """Common structural invariants; returns the route."""
    route = graph.route(src, dst)
    if src == dst:
        assert route == []
        return route
    assert route[0].src == graph.attachment(src)
    assert route[-1].dst == graph.attachment(dst)
    for a, b in zip(route, route[1:]):
        assert a.dst == b.src
    vertices = [route[0].src] + [link.dst for link in route]
    assert len(set(vertices)) == len(vertices), f"loop: {vertices}"
    return route


@settings(max_examples=200, deadline=None)
@given(st.data(), st.integers(min_value=2, max_value=16))
def test_ring_routes_minimal_and_deterministic(data, n):
    graph = _graph(ring(n))
    src, dst = _endpoints(data.draw, n)
    route = _check_chain(graph, src, dst)
    forward = (dst - src) % n
    assert len(route) == min(forward, n - forward)
    again = graph.route(src, dst)
    assert [link.name for link in route] == [link.name for link in again]


@settings(max_examples=200, deadline=None)
@given(st.data(), dims_st)
def test_mesh_dimension_ordered_routes_are_minimal(data, dims):
    rows, cols = dims
    graph = _graph(mesh2d(rows, cols))
    src, dst = _endpoints(data.draw, rows * cols)
    route = _check_chain(graph, src, dst)
    manhattan = (abs(src // cols - dst // cols)
                 + abs(src % cols - dst % cols))
    assert len(route) == manhattan
    # dimension order: all X-dimension (column-changing) hops first
    cols_of = [int(v[1:]) % cols for v in
               ([route[0].src] if route else []) + [l.dst for l in route]]
    x_moves = [a != b for a, b in zip(cols_of, cols_of[1:])]
    assert x_moves == sorted(x_moves, reverse=True)


@settings(max_examples=200, deadline=None)
@given(st.data(), dims_st)
def test_torus_routes_are_minimal_with_wraparound(data, dims):
    rows, cols = dims
    graph = _graph(torus2d(rows, cols))
    src, dst = _endpoints(data.draw, rows * cols)
    route = _check_chain(graph, src, dst)
    dr = abs(src // cols - dst // cols)
    dc = abs(src % cols - dst % cols)
    assert len(route) == min(dr, rows - dr) + min(dc, cols - dc)


@settings(max_examples=200, deadline=None)
@given(st.data(), st.sampled_from([2, 4, 6]))
def test_fattree_updown_routes_are_loop_free(data, k):
    graph = _graph(fattree(k))
    capacity = k ** 3 // 4
    src, dst = _endpoints(data.draw, capacity)
    route = _check_chain(graph, src, dst)
    if src == dst:
        return
    # up/down shape: 2 hops within an edge switch, 4 within a pod,
    # 6 across pods — and never an up hop after a down hop
    assert len(route) in (2, 4, 6)
    rank = {"h": 0, "e": 1, "a": 2, "c": 3}
    levels = [rank[v[0]] for v in
              [route[0].src] + [link.dst for link in route]]
    peak = levels.index(max(levels))
    assert levels[:peak + 1] == sorted(levels[:peak + 1])
    assert levels[peak:] == sorted(levels[peak:], reverse=True)
    again = graph.route(src, dst)
    assert [link.name for link in route] == [link.name for link in again]


@settings(max_examples=100, deadline=None)
@given(st.data(), dims_st)
def test_routes_reach_every_pair(data, dims):
    """Connectivity: a route exists for any ordered pair (torus)."""
    rows, cols = dims
    graph = _graph(torus2d(rows, cols))
    src, dst = _endpoints(data.draw, rows * cols)
    route = graph.route(src, dst)
    assert (route == []) == (src == dst)
