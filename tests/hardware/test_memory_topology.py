"""Unit tests for memory registration and cluster topology."""

import pytest

from repro.hardware import MemoryRegistrar, MemParams, build_cluster, presets
from repro.simulator import Simulator


def test_copy_time_scales_with_size():
    mem = MemParams(copy_bandwidth=1e9, copy_base=10e-9)
    assert mem.copy_time(0) == pytest.approx(10e-9)
    assert mem.copy_time(1000) == pytest.approx(10e-9 + 1e-6)


def test_registration_without_cache_always_full_cost():
    mem = MemParams(reg_base=1e-6, reg_per_byte=1e-9)
    reg = MemoryRegistrar(mem, cache=False)
    c1 = reg.cost("buf", 1000)
    c2 = reg.cost("buf", 1000)
    assert c1 == c2 == pytest.approx(1e-6 + 1e-6)
    assert reg.full_registrations == 2
    assert reg.cache_hits == 0


def test_registration_cache_hits_after_first():
    mem = MemParams(reg_base=1e-6, reg_per_byte=1e-9, reg_cache_hit=0.1e-6)
    reg = MemoryRegistrar(mem, cache=True)
    first = reg.cost("buf", 1000)
    second = reg.cost("buf", 1000)
    assert first == pytest.approx(2e-6)
    assert second == pytest.approx(0.1e-6)
    assert reg.cache_hits == 1


def test_registration_cache_distinguishes_sizes():
    reg = MemoryRegistrar(MemParams(), cache=True)
    reg.cost("buf", 1000)
    c = reg.cost("buf", 2000)
    assert c > MemParams().reg_cache_hit


def test_build_cluster_shape():
    sim = Simulator()
    cluster = build_cluster(
        sim, 4, presets.XEON_NODE, [presets.IB_CONNECTX, presets.MX_MYRI10G]
    )
    assert len(cluster) == 4
    assert cluster.rail_names == ["ib", "mx"]
    for node in cluster.nodes:
        assert set(node.nics) == {"ib", "mx"}
        assert node.params.cores == 8


def test_cluster_nics_are_connected():
    sim = Simulator()
    cluster = build_cluster(sim, 2, presets.XEON_NODE, [presets.IB_CONNECTX])
    from repro.hardware import Frame

    got = []
    cluster.node(1).nics["ib"].rx_notify = lambda f: got.append(f)
    cluster.node(0).nics["ib"].post_send(Frame(src=0, dst=1, size=8))
    sim.run()
    assert len(got) == 1


def test_build_cluster_rejects_empty():
    sim = Simulator()
    with pytest.raises(ValueError):
        build_cluster(sim, 0, presets.XEON_NODE, [presets.IB_CONNECTX])


def test_build_cluster_rejects_duplicate_rails():
    sim = Simulator()
    with pytest.raises(ValueError):
        build_cluster(sim, 2, presets.XEON_NODE, [presets.IB_CONNECTX, presets.IB_CONNECTX])


def test_ib_raw_latency_calibration():
    """The IB preset must reproduce the paper's 1.2 us raw latency."""
    p = presets.IB_CONNECTX
    raw = p.post_overhead + p.transfer_time(4) + p.recv_overhead
    assert raw == pytest.approx(1.2e-6, abs=0.1e-6)


def test_mx_raw_latency_calibration():
    # MX raw ~1.95 us; the Nmad:MX stack lands at ~2.7 us (Fig. 5a/6b)
    p = presets.MX_MYRI10G
    raw = p.post_overhead + p.transfer_time(4) + p.recv_overhead
    assert raw == pytest.approx(1.95e-6, abs=0.2e-6)


def test_make_registrar_policies():
    sim = Simulator()
    cluster = build_cluster(sim, 1, presets.XEON_NODE, [presets.IB_CONNECTX])
    cached = cluster.node(0).make_registrar(cache=True)
    uncached = cluster.node(0).make_registrar(cache=False)
    assert cached.cache and not uncached.cache
