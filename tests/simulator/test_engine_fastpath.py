"""The engine's hot-path machinery: slim entries, compaction, tracing.

These pin the behaviours the benchmark-driven rewrites introduced:

* ``_post`` entries interleave with handle entries in strict
  ``(time, seq)`` order (FIFO at equal times);
* lazy-deleted (cancelled) handles are compacted in batches once they
  dominate the queue, without disturbing live entries;
* with a monitor installed ``_post`` degrades to a monitored handle so
  happens-before edges survive;
* ``record`` is a no-op without a trace and appends with one.

Everything here must hold under *any* event-queue scheduler, so the
module is parametrized over the registry.
"""

from __future__ import annotations

import pytest

from repro.simulator import SCHEDULER_KINDS, Simulator, Trace
from repro.simulator.engine import _COMPACT_MIN_CANCELLED, ScheduledCallback


@pytest.fixture(params=sorted(SCHEDULER_KINDS))
def sched_kind(request) -> str:
    return request.param


def test_post_and_schedule_interleave_fifo(sched_kind) -> None:
    sim = Simulator(scheduler=sched_kind)
    seen = []
    sim.schedule(1.0, seen.append, "handle-a")
    sim._post(1.0, seen.append, "slim-b")
    sim.schedule(1.0, seen.append, "handle-c")
    sim._post(0.5, seen.append, "slim-first")
    sim.run()
    assert seen == ["slim-first", "handle-a", "slim-b", "handle-c"]


def test_timeout_uses_slim_entries_and_fires(sched_kind) -> None:
    sim = Simulator(scheduler=sched_kind)

    def prog():
        value = yield sim.timeout(2.5, value="v")
        return value

    task = sim.spawn(prog())
    assert sim.run() == 2.5
    assert task.value == "v"
    assert not any(type(e[2]) is ScheduledCallback
                   for e in sim._sched.entries())


def test_cancel_is_lazy_and_batched_compaction_kicks_in(sched_kind) -> None:
    sim = Simulator(scheduler=sched_kind)
    fired = []
    total = 4 * _COMPACT_MIN_CANCELLED
    handles = [sim.schedule(10.0, fired.append, i) for i in range(total)]
    live = handles[:: 4]
    for handle in handles:
        if handle not in live:
            handle.cancel()
    # 3/4 cancelled -> the batched pass must have compacted the queue
    assert len(sim._sched) < total
    assert sim._cancelled < _COMPACT_MIN_CANCELLED
    sim.run()
    assert fired == [i for i in range(total) if i % 4 == 0]


def test_cancel_is_idempotent_in_the_counter(sched_kind) -> None:
    sim = Simulator(scheduler=sched_kind)
    handle = sim.schedule(1.0, lambda: None)
    handle.cancel()
    handle.cancel()
    assert sim._cancelled == 1
    sim.run()
    assert sim._cancelled == 0


def test_run_until_sees_slim_entries(sched_kind) -> None:
    sim = Simulator(scheduler=sched_kind)
    seen = []
    sim._post(1.0, seen.append, "early")
    sim._post(5.0, seen.append, "late")
    assert sim.run(until=2.0) == 2.0
    assert seen == ["early"]
    sim.run()
    assert seen == ["early", "late"]


class _RecordingMonitor:
    def __init__(self):
        self.scheduled = []
        self.steps = []

    def on_schedule(self, handle):
        self.scheduled.append(handle)

    def before_step(self, handle):
        self.steps.append(handle)

    def after_step(self, handle):
        pass


def test_post_degrades_to_handles_under_a_monitor(sched_kind) -> None:
    sim = Simulator(scheduler=sched_kind)
    monitor = _RecordingMonitor()
    sim.monitor = monitor
    sim.timeout(1.0)          # goes through _post -> at()
    sim.schedule(2.0, lambda: None)
    assert len(monitor.scheduled) == 2
    assert all(type(h) is ScheduledCallback for h in monitor.scheduled)
    sim.run()
    assert len(monitor.steps) == 2


def test_monitored_and_bare_runs_order_identically(sched_kind) -> None:
    def drive(sim):
        seen = []

        def prog(tag, delay):
            yield sim.timeout(delay)
            seen.append(tag)
            yield sim.timeout(delay)
            seen.append(tag + "'")

        for i, delay in enumerate([0.3, 0.1, 0.2, 0.1]):
            sim.spawn(prog(f"t{i}", delay))
        sim.run()
        return seen

    bare = drive(Simulator(scheduler=sched_kind))
    monitored_sim = Simulator(scheduler=sched_kind)
    monitored_sim.monitor = _RecordingMonitor()
    assert drive(monitored_sim) == bare


def test_record_fast_path_toggles_with_trace() -> None:
    sim = Simulator()
    assert not sim.tracing
    sim.record("cat", a=1)            # must be a cheap no-op
    trace = Trace()
    sim.trace = trace
    assert sim.tracing
    sim.record("cat", a=1)
    sim.record("dog", b=2)
    assert len(trace) == 2
    sim.trace = None
    sim.record("cat", a=3)
    assert len(trace) == 2
