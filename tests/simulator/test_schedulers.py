"""Unit tests for the pluggable event-queue schedulers.

The contract under test (see ``repro/simulator/schedulers.py``): any
scheduler must hand back entries in exactly the ``(time, seq)`` total
order a binary heap would, with ``pop_batch`` carving that order into
maximal equal-time runs.  The calendar queue's adaptive machinery
(bucket resizes, the pending buffer, live appends to an open batch)
must all be invisible in the output order.
"""

from __future__ import annotations

import itertools
import random

import pytest

from repro.simulator.schedulers import (
    SCHEDULER_ENV,
    SCHEDULER_KINDS,
    CalendarScheduler,
    HeapScheduler,
    make_scheduler,
)


def _entries(times):
    """Build engine-shaped entries with seqs in push order."""
    return [(t, seq, "h") for seq, t in enumerate(times)]


def _drain_pops(sched):
    out = []
    while True:
        entry = sched.pop()
        if entry is None:
            return out
        out.append(entry)


def _drain_batches(sched):
    out = []
    while True:
        batch = sched.pop_batch()
        if batch is None:
            return out
        sched.end_batch(batch, len(batch))
        out.append(list(batch))
    return out


@pytest.fixture(params=sorted(SCHEDULER_KINDS))
def sched(request):
    return SCHEDULER_KINDS[request.param]()


# -- factory -----------------------------------------------------------
def test_make_scheduler_defaults_to_calendar(monkeypatch) -> None:
    monkeypatch.delenv(SCHEDULER_ENV, raising=False)
    assert isinstance(make_scheduler(None), CalendarScheduler)


def test_make_scheduler_honours_env(monkeypatch) -> None:
    monkeypatch.setenv(SCHEDULER_ENV, "heap")
    assert isinstance(make_scheduler(None), HeapScheduler)
    monkeypatch.setenv(SCHEDULER_ENV, "")
    assert isinstance(make_scheduler(None), CalendarScheduler)


def test_make_scheduler_name_and_passthrough() -> None:
    assert isinstance(make_scheduler("heap"), HeapScheduler)
    inst = CalendarScheduler()
    assert make_scheduler(inst) is inst
    with pytest.raises(ValueError, match="unknown scheduler"):
        make_scheduler("splay")


def test_calendar_rejects_nonpositive_width() -> None:
    with pytest.raises(ValueError):
        CalendarScheduler(width=0.0)


# -- total order -------------------------------------------------------
def test_pop_yields_sorted_order(sched) -> None:
    times = [5e-6, 1e-6, 1e-6, 3e-6, 0.0, 5e-6, 2.5e-6]
    entries = _entries(times)
    for entry in entries:
        sched.push(entry)
    assert len(sched) == len(entries)
    assert _drain_pops(sched) == sorted(entries)
    assert len(sched) == 0
    assert sched.pop() is None
    assert sched.peek_time() is None


def test_pop_batch_is_maximal_equal_time_runs(sched) -> None:
    times = [2.0, 1.0, 1.0, 3.0, 1.0, 2.0]
    for entry in _entries(times):
        sched.push(entry)
    batches = _drain_batches(sched)
    assert [[e[0] for e in b] for b in batches] == \
        [[1.0, 1.0, 1.0], [2.0, 2.0], [3.0]]
    # within a batch, seq (push) order
    assert [e[1] for e in batches[0]] == [1, 2, 4]


def test_random_interleaving_matches_heap(sched) -> None:
    rng = random.Random(42)
    seq = itertools.count()
    reference = HeapScheduler()
    popped, ref_popped = [], []
    for _ in range(2000):
        action = rng.random()
        if action < 0.6 or len(sched) == 0:
            t = rng.choice([0.0, 1e-9, 5e-9, 1e-6, 2.5e-4, 1.0]) * \
                rng.randint(1, 20)
            entry = (t, next(seq), "h")
            sched.push(entry)
            reference.push(entry)
        elif action < 0.85:
            popped.append(sched.pop())
            ref_popped.append(reference.pop())
        else:
            batch = sched.pop_batch()
            ref = reference.pop_batch()
            assert (batch is None) == (ref is None)
            if batch is not None:
                sched.end_batch(batch, len(batch))
                reference.end_batch(ref, len(ref))
                popped.extend(batch)
                ref_popped.extend(ref)
        assert len(sched) == len(reference)
    popped.extend(_drain_pops(sched))
    ref_popped.extend(_drain_pops(reference))
    assert popped == ref_popped


# -- open-batch live append -------------------------------------------
def test_push_at_open_batch_time_dispatches_before_later_times(sched) -> None:
    """A same-time push during an open batch runs before any later time.

    The calendar appends it to the draining list in place; the heap
    serves it as the immediately following batch.  Either way the
    dispatch order (what the engine executes) is identical.
    """
    for entry in _entries([1.0, 1.0, 2.0]):
        sched.push(entry)
    order = []
    batch = sched.pop_batch()
    done = 0
    while done < len(batch):                     # the engine's drain shape
        entry = batch[done]
        done += 1
        order.append(entry[1])
        if entry[1] == 1:
            sched.push((1.0, 99, "late"))
    sched.end_batch(batch, done)
    for later in _drain_batches(sched):
        order.extend(e[1] for e in later)
    assert order == [0, 1, 99, 2]


def test_calendar_live_append_lands_in_the_open_batch() -> None:
    cal = CalendarScheduler()
    for entry in _entries([1.0, 1.0, 2.0]):
        cal.push(entry)
    batch = cal.pop_batch()
    assert [e[1] for e in batch] == [0, 1]
    cal.push((1.0, 99, "late"))
    assert [e[1] for e in batch] == [0, 1, 99]   # appended in place
    cal.end_batch(batch, len(batch))
    assert _drain_pops(cal) == [(2.0, 2, "h")]


def test_push_at_other_time_during_open_batch(sched) -> None:
    for entry in _entries([1.0, 3.0]):
        sched.push(entry)
    batch = sched.pop_batch()
    sched.push((2.0, 10, "mid"))
    assert len(batch) == 1                       # did not join
    sched.end_batch(batch, len(batch))
    assert [e[0] for e in _drain_pops(sched)] == [2.0, 3.0]


def test_end_batch_requeues_undispatched_tail(sched) -> None:
    for entry in _entries([1.0, 1.0, 1.0]):
        sched.push(entry)
    batch = sched.pop_batch()
    assert len(sched) == 0
    sched.end_batch(batch, 1)                    # crashed after one entry
    assert len(sched) == 2
    assert [e[1] for e in _drain_pops(sched)] == [1, 2]


# -- pending buffer / mixed access ------------------------------------
def test_peek_then_push_below_head_spills(sched) -> None:
    for entry in _entries([2.0, 3.0]):
        sched.push(entry)
    assert sched.peek_time() == pytest.approx(2.0)
    sched.push((1.0, 50, "early"))               # below the buffered head
    assert sched.peek_time() == pytest.approx(1.0)
    assert [e[0] for e in _drain_pops(sched)] == [1.0, 2.0, 3.0]


def test_mixed_pop_and_pop_batch(sched) -> None:
    for entry in _entries([1.0, 1.0, 2.0, 2.0]):
        sched.push(entry)
    assert sched.pop()[1] == 0                   # half a batch, entry-wise
    batch = sched.pop_batch()                    # rest of the t=1 run
    assert [e[1] for e in batch] == [1]
    sched.end_batch(batch, len(batch))
    assert [e[1] for e in _drain_pops(sched)] == [2, 3]


# -- remove_if ---------------------------------------------------------
def test_remove_if_drops_matches_everywhere(sched) -> None:
    entries = _entries([1.0, 1.0, 2.0, 3.0, 3.0, 4.0])
    for entry in entries:
        sched.push(entry)
    sched.peek_time()                            # pull a run into any buffer
    removed = sched.remove_if(lambda e: e[1] % 2 == 0)
    assert removed == 3
    assert len(sched) == 3
    assert [e[1] for e in _drain_pops(sched)] == [1, 3, 5]


def test_entries_exposes_queued_items(sched) -> None:
    pushed = _entries([3.0, 1.0, 2.0])
    for entry in pushed:
        sched.push(entry)
    assert sorted(sched.entries()) == sorted(pushed)


# -- calendar adaptation ----------------------------------------------
def test_calendar_shrinks_on_an_oversized_bucket() -> None:
    cal = CalendarScheduler(width=1.0)           # everything in one bucket
    times = [i * 1e-4 for i in range(2000)]
    entries = _entries(times)
    for entry in entries:
        cal.push(entry)
    assert _drain_pops(cal) == sorted(entries)
    stats = cal.stats()
    assert stats["resizes"] >= 1
    assert cal._width < 1.0


def test_calendar_widens_when_sparse() -> None:
    cal = CalendarScheduler(width=1e-9)          # every entry alone
    seq = itertools.count()
    for _ in range(3):                           # cross the widen check
        for i in range(4096):
            cal.push((i * 1e-3, next(seq), "h"))
        drained = _drain_pops(cal)
        assert drained == sorted(drained)
    assert cal.stats()["resizes"] >= 1
    assert cal._width > 1e-9


def test_calendar_same_time_flood_never_resizes() -> None:
    cal = CalendarScheduler(width=1.0)
    for entry in _entries([0.5] * 4096):
        cal.push(entry)
    batch = cal.pop_batch()
    assert len(batch) == 4096
    cal.end_batch(batch, len(batch))
    assert cal.stats()["resizes"] == 0           # zero span: no shrink
    assert len(cal) == 0


def test_calendar_stats_counters() -> None:
    cal = CalendarScheduler()
    for entry in _entries([1.0, 1.0, 2.0]):
        cal.push(entry)
    _drain_batches(cal)
    stats = cal.stats()
    assert stats["batches"] == 2
    assert stats["max_batch"] == 2
    assert stats["width"] > 0
