"""Property tests: the calendar queue is extensionally a binary heap.

Hypothesis drives randomized operation sequences against the
:class:`CalendarScheduler` and the :class:`HeapScheduler` side by side;
any observable divergence (pop order, batch contents, lengths, survivor
sets after a purge) is a bug in the calendar's bucket machinery.  Tiny
initial widths are included on purpose so shrink/widen rehashes fire
mid-sequence — the resizes must be invisible.

The last property goes through the full :class:`Simulator` API
(post/cancel/repost from inside running callbacks) rather than the raw
scheduler contract, pinning the engine-level dispatch order itself.
"""

from __future__ import annotations

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simulator import Simulator
from repro.simulator.schedulers import CalendarScheduler, HeapScheduler

#: sim times that collide hard (exact ties) and span many magnitudes
_TIMES = st.sampled_from(
    [0.0, 1e-9, 2e-9, 5e-9, 1e-7, 1.5e-7, 1e-6, 3e-6, 2.5e-4, 1e-2, 1.0])
#: widths from "everything in one bucket" to "every entry alone"
_WIDTHS = st.sampled_from([1e-9, 1e-7, 1e-3, 1.0, 100.0])

#: an operation program: push(time) / pop / batch, weighted toward push
_OPS = st.lists(
    st.one_of(
        st.tuples(st.just("push"), _TIMES),
        st.tuples(st.just("push"), _TIMES),
        st.tuples(st.just("pop"), st.none()),
        st.tuples(st.just("batch"), st.none()),
    ),
    min_size=1, max_size=200)


@settings(max_examples=60, deadline=None)
@given(ops=_OPS, width=_WIDTHS)
def test_op_sequences_match_the_heap(ops, width) -> None:
    cal = CalendarScheduler(width=width)
    heap = HeapScheduler()
    seq = itertools.count()
    out_cal, out_heap = [], []
    for op, time in ops:
        if op == "push":
            entry = (time, next(seq), "h")
            cal.push(entry)
            heap.push(entry)
        elif op == "pop":
            out_cal.append(cal.pop())
            out_heap.append(heap.pop())
        else:
            batch_cal = cal.pop_batch()
            batch_heap = heap.pop_batch()
            assert (batch_cal is None) == (batch_heap is None)
            if batch_cal is not None:
                assert batch_cal == batch_heap
                cal.end_batch(batch_cal, len(batch_cal))
                heap.end_batch(batch_heap, len(batch_heap))
                out_cal.extend(batch_cal)
                out_heap.extend(batch_heap)
        assert len(cal) == len(heap)
    assert out_cal == out_heap
    # drain both: the leftovers agree too, in (time, seq) order
    tail = []
    while True:
        a, b = cal.pop(), heap.pop()
        assert a == b
        if a is None:
            break
        tail.append(a)
    assert tail == sorted(tail)


@settings(max_examples=40, deadline=None)
@given(ops=_OPS, width=_WIDTHS,
       drop_mod=st.integers(min_value=2, max_value=5))
def test_lazy_deletion_survives_resizes(ops, width, drop_mod) -> None:
    """remove_if mid-sequence drops the same survivors as the heap."""
    cal = CalendarScheduler(width=width)
    heap = HeapScheduler()
    seq = itertools.count()
    pred = lambda e: e[1] % drop_mod == 0        # noqa: E731
    for i, (op, time) in enumerate(ops):
        if op == "push":
            entry = (time, next(seq), "h")
            cal.push(entry)
            heap.push(entry)
        elif op == "pop":
            assert cal.pop() == heap.pop()
        else:                                    # purge instead of batch
            assert cal.remove_if(pred) == heap.remove_if(pred)
        assert len(cal) == len(heap)
    assert sorted(cal.entries()) == sorted(heap.entries())
    while True:
        a, b = cal.pop(), heap.pop()
        assert a == b
        if a is None:
            break


@settings(max_examples=40, deadline=None)
@given(ops=_OPS, width=_WIDTHS,
       crash_after=st.integers(min_value=0, max_value=3))
def test_partial_end_batch_requeues_identically(ops, width,
                                                crash_after) -> None:
    """Abandoning a batch after N entries resumes identically."""
    cal = CalendarScheduler(width=width)
    heap = HeapScheduler()
    seq = itertools.count()
    for op, time in ops:
        if op == "push":
            entry = (time, next(seq), "h")
            cal.push(entry)
            heap.push(entry)
        else:                                    # pop or batch: crash it
            batch_cal = cal.pop_batch()
            batch_heap = heap.pop_batch()
            assert batch_cal == batch_heap
            if batch_cal is None:
                continue
            done = min(crash_after, len(batch_cal))
            cal.end_batch(batch_cal, done)
            heap.end_batch(batch_heap, done)
        assert len(cal) == len(heap)
    while True:
        a, b = cal.pop(), heap.pop()
        assert a == b
        if a is None:
            break


#: per-callback actions for the engine-level property
_ACTIONS = st.lists(
    st.tuples(
        st.sampled_from(["spawn", "cancelchild", "repost"]),
        st.sampled_from([0.0, 0.0, 1e-9, 1e-6, 2.5e-4]),  # delays (>= 0)
        st.integers(min_value=0, max_value=3),
    ),
    min_size=1, max_size=40)


def _drive(scheduler, actions):
    """One deterministic run: callbacks post/cancel/repost more work."""
    sim = Simulator(scheduler=scheduler)
    order = []
    handles = []

    def fire(tag, depth, todo):
        order.append((sim.now, tag))
        if depth >= 2:
            return
        for i, (what, delay, arg) in enumerate(todo):
            if what == "spawn":
                handles.append(sim.schedule(
                    delay, fire, f"{tag}.{i}", depth + 1, todo[arg:]))
            elif what == "cancelchild":
                if handles:
                    handles[arg % len(handles)].cancel()
            else:                                # repost at the same time
                sim.schedule(0.0, order.append, (sim.now, f"{tag}.r{i}"))

    for i, (_, delay, _) in enumerate(actions):
        sim.schedule(delay, fire, f"root{i}", 0, actions)
    sim.run()
    return order


@settings(max_examples=25, deadline=None)
@given(actions=_ACTIONS)
def test_engine_dispatch_order_is_scheduler_invariant(actions) -> None:
    assert _drive("calendar", actions) == _drive("heap", actions)
