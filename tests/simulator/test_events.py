"""Unit tests for events, AllOf/AnyOf combinators."""

import pytest

from repro.simulator import Simulator, SimulationError


def test_event_initially_pending():
    sim = Simulator()
    evt = sim.event()
    assert not evt.triggered
    assert not evt.ok


def test_succeed_carries_value():
    sim = Simulator()
    evt = sim.event()
    evt.succeed(41)
    assert evt.triggered and evt.ok
    assert evt.value == 41


def test_double_succeed_rejected():
    sim = Simulator()
    evt = sim.event()
    evt.succeed()
    with pytest.raises(SimulationError):
        evt.succeed()


def test_fail_requires_exception():
    sim = Simulator()
    evt = sim.event()
    with pytest.raises(SimulationError):
        evt.fail("not an exception")


def test_callback_after_trigger_still_runs():
    sim = Simulator()
    evt = sim.event()
    evt.succeed("v")
    seen = []
    evt.add_done_callback(lambda e: seen.append(e.value))
    sim.run()
    assert seen == ["v"]


def test_timeout_value():
    sim = Simulator()
    evt = sim.timeout(1.0, value="hello")
    sim.run()
    assert evt.value == "hello"


def test_all_of_waits_for_everything():
    sim = Simulator()
    e1, e2 = sim.timeout(1.0, "a"), sim.timeout(3.0, "b")
    combined = sim.all_of([e1, e2])
    done_at = []
    combined.add_done_callback(lambda e: done_at.append(sim.now))
    sim.run()
    assert combined.value == ["a", "b"]
    assert done_at == [3.0]


def test_all_of_empty_succeeds_immediately():
    sim = Simulator()
    combined = sim.all_of([])
    assert combined.triggered
    assert combined.value == []


def test_any_of_fires_on_first():
    sim = Simulator()
    e1, e2 = sim.timeout(5.0, "slow"), sim.timeout(1.0, "fast")
    combined = sim.any_of([e1, e2])
    done_at = []
    combined.add_done_callback(lambda e: done_at.append(sim.now))
    sim.run()
    assert combined.value == (1, "fast")
    assert done_at == [1.0]


def test_any_of_requires_children():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.any_of([])


def test_all_of_propagates_failure():
    sim = Simulator()

    def failing():
        yield sim.timeout(1.0)
        raise ValueError("boom")

    task = sim.spawn(failing())
    combined = sim.all_of([task, sim.timeout(10.0)])
    outcome = []
    combined.add_done_callback(lambda e: outcome.append((e.ok, e.value)))
    sim.run()
    assert outcome[0][0] is False
    assert isinstance(outcome[0][1], ValueError)
