"""Unit tests for tasks (generator coroutines)."""

import pytest

from repro.simulator import Simulator, SimulationError
from repro.simulator.errors import Interrupt


def test_task_advances_time():
    sim = Simulator()
    log = []

    def proc():
        log.append(sim.now)
        yield sim.timeout(2.0)
        log.append(sim.now)
        yield sim.timeout(3.0)
        log.append(sim.now)

    sim.spawn(proc())
    sim.run()
    assert log == [0.0, 2.0, 5.0]


def test_task_return_value():
    sim = Simulator()

    def proc():
        yield sim.timeout(1.0)
        return 99

    task = sim.spawn(proc())
    sim.run()
    assert task.value == 99


def test_join_task():
    sim = Simulator()

    def child():
        yield sim.timeout(4.0)
        return "result"

    def parent():
        value = yield sim.spawn(child())
        return (sim.now, value)

    task = sim.spawn(parent())
    sim.run()
    assert task.value == (4.0, "result")


def test_two_tasks_interleave():
    sim = Simulator()
    log = []

    def proc(name, step):
        for _ in range(3):
            yield sim.timeout(step)
            log.append((name, sim.now))

    sim.spawn(proc("a", 1.0))
    sim.spawn(proc("b", 1.5))
    sim.run()
    # At t=3.0 both wake; b's timeout was scheduled earlier (at t=1.5)
    # so FIFO tie-breaking wakes b first.
    assert log == [
        ("a", 1.0), ("b", 1.5), ("a", 2.0), ("b", 3.0), ("a", 3.0), ("b", 4.5),
    ]


def test_spawn_does_not_run_synchronously():
    sim = Simulator()
    log = []

    def child():
        log.append("child")
        yield sim.timeout(0.0)

    def parent():
        sim.spawn(child())
        log.append("parent-after-spawn")
        yield sim.timeout(0.0)

    sim.spawn(parent())
    sim.run()
    assert log[0] == "parent-after-spawn"


def test_unhandled_task_exception_propagates_from_run():
    sim = Simulator()

    def bad():
        yield sim.timeout(1.0)
        raise RuntimeError("explode")

    sim.spawn(bad())
    with pytest.raises(RuntimeError, match="explode"):
        sim.run()


def test_joined_task_exception_rethrown_in_parent():
    sim = Simulator()

    def bad():
        yield sim.timeout(1.0)
        raise ValueError("inner")

    def parent():
        try:
            yield sim.spawn(bad())
        except ValueError as err:
            return f"caught {err}"

    task = sim.spawn(parent())
    sim.run()
    assert task.value == "caught inner"


def test_yielding_non_event_fails_task():
    sim = Simulator()

    def bad():
        yield 42

    sim.spawn(bad())
    with pytest.raises(SimulationError, match="must yield Events"):
        sim.run()


def test_spawn_requires_generator():
    sim = Simulator()

    def not_a_generator():
        return 5

    with pytest.raises(SimulationError, match="needs a generator"):
        sim.spawn(not_a_generator)


def test_interrupt_wakes_blocked_task():
    sim = Simulator()
    log = []

    def sleeper():
        try:
            yield sim.timeout(100.0)
        except Interrupt as intr:
            log.append((sim.now, intr.cause))

    task = sim.spawn(sleeper())

    def interrupter():
        yield sim.timeout(2.0)
        task.interrupt("wake up")

    sim.spawn(interrupter())
    sim.run()
    assert log == [(2.0, "wake up")]


def test_interrupt_finished_task_rejected():
    sim = Simulator()

    def quick():
        yield sim.timeout(1.0)

    task = sim.spawn(quick())
    sim.run()
    with pytest.raises(SimulationError):
        task.interrupt()


def test_stale_event_after_interrupt_is_ignored():
    sim = Simulator()
    log = []

    def sleeper():
        try:
            yield sim.timeout(10.0)
        except Interrupt:
            pass
        yield sim.timeout(100.0)
        log.append(sim.now)

    task = sim.spawn(sleeper())

    def interrupter():
        yield sim.timeout(1.0)
        task.interrupt()

    sim.spawn(interrupter())
    sim.run()
    # The original 10.0 timeout firing must not resume the task early:
    # it continues sleeping its 100s from t=1.
    assert log == [101.0]


def test_is_alive():
    sim = Simulator()

    def quick():
        yield sim.timeout(1.0)

    task = sim.spawn(quick())
    assert task.is_alive
    sim.run()
    assert not task.is_alive
