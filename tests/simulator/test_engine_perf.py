"""Engine run-loop perf telemetry: events, queue peak, wall time."""

from repro.observability import (format_engine_stats, peak_rss_kib,
                                 record_engine_metrics)
from repro.simulator import SCHEDULER_KINDS, Simulator


def _burst(sim, n):
    hit = [0]
    for i in range(n):
        sim.schedule(i * 1e-9, lambda: hit.__setitem__(0, hit[0] + 1))
    return hit


def test_perf_stats_count_events_and_queue_peak():
    sim = Simulator()
    _burst(sim, 50)
    sim.run()
    stats = sim.perf_stats()
    assert stats["events_executed"] == 50
    assert stats["queue_peak"] == 50      # all scheduled before running
    assert stats["heap_peak"] == 50       # legacy alias, kept in sync
    assert sim.heap_peak == sim.queue_peak
    assert stats["wall_seconds"] >= 0.0
    assert stats["events_per_sec"] >= 0.0


def test_perf_stats_name_the_scheduler():
    for kind in sorted(SCHEDULER_KINDS):
        sim = Simulator(scheduler=kind)
        _burst(sim, 10)
        sim.run()
        stats = sim.perf_stats()
        assert stats["scheduler"] == kind
        assert isinstance(stats["scheduler_stats"], dict)
        assert stats["batches_executed"] >= 1
        assert stats["events_per_batch"] >= 1.0


def test_calendar_batches_same_time_floods():
    sim = Simulator(scheduler="calendar")
    hit = [0]
    for _ in range(100):                  # one timestamp, one batch
        sim.schedule(1e-6, lambda: hit.__setitem__(0, hit[0] + 1))
    sim.run()
    stats = sim.perf_stats()
    assert hit[0] == 100
    assert stats["batches_executed"] == 1
    assert stats["scheduler_stats"]["max_batch"] == 100


def test_perf_stats_accumulate_across_runs():
    sim = Simulator()
    _burst(sim, 10)
    sim.run()
    _burst(sim, 10)
    sim.run()
    assert sim.perf_stats()["events_executed"] == 20


def test_perf_stats_on_bounded_run():
    sim = Simulator()
    _burst(sim, 10)
    sim.run(until=4.5e-9)                 # until-path, not the hot loop
    stats = sim.perf_stats()
    assert stats["events_executed"] == 5
    assert stats["wall_seconds"] >= 0.0


def test_process_telemetry_counts_generator_turns():
    sim = Simulator()

    def proc():
        for _ in range(8):
            yield sim.timeout(1e-9)

    sim.spawn(proc())
    sim.run()
    assert sim.perf_stats()["events_executed"] >= 8


def test_record_engine_metrics_feeds_registry():
    sim = Simulator()
    _burst(sim, 5)
    sim.run()
    from repro.observability import MetricsRegistry

    registry = MetricsRegistry()
    stats = record_engine_metrics(sim, registry)
    snap = registry.snapshot()
    assert snap["engine.events"]["value"] == 5
    assert snap["engine.queue_peak"]["value"] == 5
    assert snap["engine.heap_peak"]["value"] == 5    # legacy alias
    assert snap["process.peak_rss_kib"]["value"] == stats["peak_rss_kib"]
    assert stats["peak_rss_kib"] > 0
    text = format_engine_stats(stats)
    assert "5 events" in text
    assert "queue peak 5" in text
    assert f"scheduler {stats['scheduler']}" in text


def test_peak_rss_positive():
    assert peak_rss_kib() > 0
