"""Monitored-mode equivalence: ``repro race`` is scheduler-invariant.

With a monitor installed the engine falls back to the single-pop path,
so the happens-before graph the race detector builds (contexts, sync
edges, access order) must be *identical* under the calendar queue and
the reference heap.  These tests run the real ``run_race`` harness on
both stack presets and a seeded true positive under both schedulers and
compare every observable of the resulting reports.

A divergence here means the calendar's monitored fallback reordered a
dispatch — exactly the regression this file exists to catch.
"""

from __future__ import annotations

import pytest

from repro import config
from repro.analysis.race import RaceDetector, run_race
from repro.simulator import SCHEDULER_KINDS, Simulator

_PRESETS = {
    "mpich2_nmad": config.mpich2_nmad,
    "mpich2_nmad_reliable": config.mpich2_nmad_reliable,
}


def _report_shape(report):
    """Every comparable observable of a race report."""
    return {
        "accesses": report.accesses,
        "contexts": report.contexts,
        "syncs": report.syncs,
        "variables": report.variables,
        "dropped": report.dropped,
        "races": [(r.var,
                   r.first.ctx_name, r.first.write, r.first.tick,
                   r.second.ctx_name, r.second.write, r.second.tick)
                  for r in report.races],
    }


@pytest.mark.parametrize("preset", sorted(_PRESETS))
def test_preset_race_reports_identical_across_schedulers(preset) -> None:
    reports = {kind: run_race(_PRESETS[preset](), size=16384, reps=2,
                              scheduler=kind)
               for kind in sorted(SCHEDULER_KINDS)}
    for kind, report in reports.items():
        assert report.accesses > 50, f"{kind}: instrumentation did not fire"
        assert report.clean, f"{kind}: {report.format_text()}"
    assert _report_shape(reports["heap"]) == \
        _report_shape(reports["calendar"])


def _seeded_racy_run(kind):
    """A toy with one true race plus ordered traffic, under ``kind``."""
    detector = RaceDetector()
    sim = Simulator(scheduler=kind)
    detector.install(sim)
    done = sim.event()

    def writer():
        yield sim.timeout(1e-6)
        sim.race_write("shared")               # racy: no edge to reader
        sim.race_write("handed-off")
        done.succeed()

    def reader():
        yield sim.timeout(2e-6)
        sim.race_read("shared")

    def follower():
        yield done                             # ordered: via the event
        sim.race_read("handed-off")

    sim.spawn(writer(), name="writer")
    sim.spawn(reader(), name="reader")
    sim.spawn(follower(), name="follower")
    sim.run()
    return detector.report()


def test_seeded_race_found_identically_across_schedulers() -> None:
    shapes = {kind: _report_shape(_seeded_racy_run(kind))
              for kind in sorted(SCHEDULER_KINDS)}
    assert [r[0] for r in shapes["calendar"]["races"]] == ["shared"]
    assert shapes["heap"] == shapes["calendar"]
