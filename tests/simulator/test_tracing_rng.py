"""Unit tests for tracing and deterministic RNG streams."""

from repro.simulator import Simulator, Trace
from repro.simulator.rng import rng_stream


def test_trace_records_with_time():
    trace = Trace()
    sim = Simulator(trace=trace)
    sim.schedule(1.0, lambda: sim.record("nic", rail="ib", size=64))
    sim.run()
    assert len(trace) == 1
    rec = trace.records[0]
    assert rec.time == 1.0
    assert rec.category == "nic"
    assert rec.data == {"rail": "ib", "size": 64}


def test_trace_filter_and_count():
    trace = Trace()
    sim = Simulator(trace=trace)
    sim.record("send", dst=1)
    sim.record("send", dst=2)
    sim.record("recv", src=1)
    assert trace.count("send") == 2
    assert trace.count("send", dst=2) == 1
    assert [r.data["src"] for r in trace.filter("recv")] == [1]


def test_trace_category_filtering_at_record_time():
    trace = Trace(categories={"keep"})
    sim = Simulator(trace=trace)
    sim.record("keep", a=1)
    sim.record("drop", b=2)
    assert trace.count("keep") == 1
    assert trace.count("drop") == 0


def test_record_without_trace_is_noop():
    sim = Simulator()
    sim.record("anything", x=1)  # must not raise


def test_rng_stream_reproducible():
    a = rng_stream(42, "nic", 0)
    b = rng_stream(42, "nic", 0)
    assert list(a.integers(0, 100, 10)) == list(b.integers(0, 100, 10))


def test_rng_stream_independent_keys():
    a = rng_stream(42, "nic", 0)
    b = rng_stream(42, "nic", 1)
    assert list(a.integers(0, 1000, 10)) != list(b.integers(0, 1000, 10))


def test_rng_stream_string_and_int_keys_distinct():
    a = rng_stream(7, "sampler")
    b = rng_stream(7, "driver")
    assert a.random() != b.random()


def test_first_divergence_identical_and_diverging():
    from repro.simulator import Trace

    a, b = Trace(), Trace()
    for t in (1.0, 2.0):
        a.append(t, "x", {"v": t})
        b.append(t, "x", {"v": t})
    assert a.first_divergence(b) is None
    b.append(3.0, "x", {"v": 3.0})
    assert a.first_divergence(b) == 2       # length mismatch
    a.append(3.0, "x", {"v": 99.0})
    assert a.first_divergence(b) == 2       # differing record
