"""Unit tests for semaphores, mutexes, and channels."""

import pytest

from repro.simulator import Channel, Mutex, Semaphore, SimulationError, Simulator


def test_semaphore_immediate_acquire():
    sim = Simulator()
    sem = Semaphore(sim, value=2)
    log = []

    def proc():
        yield sem.acquire()
        log.append(sim.now)

    sim.spawn(proc())
    sim.run()
    assert log == [0.0]
    assert sem.value == 1


def test_semaphore_blocks_until_release():
    sim = Simulator()
    sem = Semaphore(sim, value=0)
    log = []

    def waiter():
        yield sem.acquire()
        log.append(sim.now)

    def releaser():
        yield sim.timeout(5.0)
        sem.release()

    sim.spawn(waiter())
    sim.spawn(releaser())
    sim.run()
    assert log == [5.0]


def test_semaphore_fifo_order():
    sim = Simulator()
    sem = Semaphore(sim, value=0)
    order = []

    def waiter(name):
        yield sem.acquire()
        order.append(name)

    for name in "abc":
        sim.spawn(waiter(name))

    def releaser():
        yield sim.timeout(1.0)
        sem.release(3)

    sim.spawn(releaser())
    sim.run()
    assert order == ["a", "b", "c"]


def test_try_acquire():
    sim = Simulator()
    sem = Semaphore(sim, value=1)
    assert sem.try_acquire() is True
    assert sem.try_acquire() is False


def test_negative_initial_value_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        Semaphore(sim, value=-1)


def test_mutex_exclusion():
    sim = Simulator()
    mtx = Mutex(sim)
    log = []

    def critical(name, hold):
        yield mtx.acquire()
        log.append((name, "in", sim.now))
        yield sim.timeout(hold)
        log.append((name, "out", sim.now))
        mtx.release()

    sim.spawn(critical("a", 2.0))
    sim.spawn(critical("b", 1.0))
    sim.run()
    assert log == [
        ("a", "in", 0.0), ("a", "out", 2.0), ("b", "in", 2.0), ("b", "out", 3.0),
    ]


def test_mutex_release_unheld_rejected():
    sim = Simulator()
    mtx = Mutex(sim)
    with pytest.raises(SimulationError):
        mtx.release()


def test_channel_put_then_get():
    sim = Simulator()
    chan = Channel(sim)
    chan.put("x")
    got = []

    def getter():
        item = yield chan.get()
        got.append(item)

    sim.spawn(getter())
    sim.run()
    assert got == ["x"]


def test_channel_get_blocks_until_put():
    sim = Simulator()
    chan = Channel(sim)
    got = []

    def getter():
        item = yield chan.get()
        got.append((item, sim.now))

    def putter():
        yield sim.timeout(3.0)
        chan.put("late")

    sim.spawn(getter())
    sim.spawn(putter())
    sim.run()
    assert got == [("late", 3.0)]


def test_channel_preserves_fifo():
    sim = Simulator()
    chan = Channel(sim)
    for i in range(5):
        chan.put(i)
    got = []

    def getter():
        for _ in range(5):
            item = yield chan.get()
            got.append(item)

    sim.spawn(getter())
    sim.run()
    assert got == [0, 1, 2, 3, 4]


def test_channel_try_get_and_peek():
    sim = Simulator()
    chan = Channel(sim)
    assert chan.try_get() is None
    assert chan.peek() is None
    chan.put(7)
    assert chan.peek() == 7
    assert len(chan) == 1
    assert chan.try_get() == 7
    assert len(chan) == 0
