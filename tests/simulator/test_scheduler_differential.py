"""Differential harness: the calendar queue must be *exactly* the heap.

The calendar scheduler is only allowed as the default because its
dispatch order is bit-identical to the reference binary heap.  This
module enforces that end to end, at three zoom levels:

* every experiment module pinned by a golden (``tests/goldens/*.json``)
  produces byte-identical canonical JSON under both schedulers, run
  through the real campaign machinery with the result cache disabled
  (a cache hit would silently compare a result against itself);
* a subset of fig8's NAS points (the heaviest golden, covered in
  points mode like the golden itself) round-trips identically;
* both stack presets run a traced ping-pong to identical
  :class:`RunResult` fields *and* identical trace-record streams —
  order included, which is the sharpest observable of dispatch order.

Everything runs in fast mode and uncached; the point is equivalence,
not the pinned values (``test_goldens.py`` owns those).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List

import pytest

from repro import config
from repro.campaign import canonical_json, execute_point, run_campaign
from repro.campaign.cache import _as_plain
from repro.faults.determinism import fresh_id_space
from repro.runtime import run_mpi
from repro.simulator import SCHEDULER_KINDS, Trace
from repro.workloads.netpipe import pingpong

GOLDEN_DIR = Path(__file__).parents[1] / "goldens"

#: modules pinned by merged-mode goldens (fig8 is points-mode, below)
_MERGED_MODULES = sorted(
    golden["module"]
    for golden in (json.load(open(p)) for p in GOLDEN_DIR.glob("*.json"))
    if golden["mode"] == "merged"
)

#: two fig8 NAS points, one small and one mid-size communicator
_FIG8_POINT_KEYS = ["8/MPICH2-NMad_NO_PIOMan/cg",
                    "16/MPICH2-NMad_with_PIOMan/ft"]

assert set(SCHEDULER_KINDS) == {"heap", "calendar"}, \
    "new scheduler kinds must be added to this differential harness"


def _campaign_result(module: str, kind: str, monkeypatch) -> str:
    from repro.simulator.schedulers import SCHEDULER_ENV

    monkeypatch.setenv(SCHEDULER_ENV, kind)
    fresh_id_space()     # frame/pw/rdv ids are process-global counters
    report = run_campaign(modules=[module], fast=True, cache=None)
    return canonical_json(_as_plain(report.modules[module]))


@pytest.mark.parametrize("module", _MERGED_MODULES)
def test_golden_module_bit_identical_across_schedulers(
        module: str, monkeypatch) -> None:
    heap = _campaign_result(module, "heap", monkeypatch)
    calendar = _campaign_result(module, "calendar", monkeypatch)
    assert heap == calendar, (
        f"module {module} diverges between schedulers")


def _fig8_points() -> List[Any]:
    from repro.experiments import fig8_nas

    wanted = set(_FIG8_POINT_KEYS)
    points = [p for p in fig8_nas.points(fast=True) if p.key in wanted]
    assert {p.key for p in points} == wanted
    return points


def test_fig8_points_bit_identical_across_schedulers(monkeypatch) -> None:
    from repro.simulator.schedulers import SCHEDULER_ENV

    results: Dict[str, Dict[str, str]] = {}
    for kind in sorted(SCHEDULER_KINDS):
        monkeypatch.setenv(SCHEDULER_ENV, kind)
        fresh_id_space()
        results[kind] = {p.key: canonical_json(_as_plain(
                             execute_point(p.config())))
                         for p in _fig8_points()}
    assert results["heap"] == results["calendar"]


_PRESETS = {
    "mpich2_nmad": config.mpich2_nmad,
    "mpich2_nmad_reliable": config.mpich2_nmad_reliable,
}


def _traced_pingpong(preset: str, kind: str):
    fresh_id_space()
    trace = Trace()
    result = run_mpi(pingpong(16384, reps=4, warmup=1), 2,
                     _PRESETS[preset](), cluster=config.xeon_pair(),
                     trace=trace, scheduler=kind)
    return result, trace


@pytest.mark.parametrize("preset", sorted(_PRESETS))
def test_preset_trace_streams_identical(preset: str) -> None:
    heap_result, heap_trace = _traced_pingpong(preset, "heap")
    cal_result, cal_trace = _traced_pingpong(preset, "calendar")

    assert heap_result.elapsed == cal_result.elapsed
    assert heap_result.sim_time == cal_result.sim_time
    assert heap_result.rank_times == cal_result.rank_times
    assert heap_result.rank_results == cal_result.rank_results

    div = heap_trace.first_divergence(cal_trace)
    assert div is None, (
        f"{preset}: trace diverges at record {div}: "
        f"heap={list(heap_trace)[div:div + 1]} "
        f"calendar={list(cal_trace)[div:div + 1]}")
