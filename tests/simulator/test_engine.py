"""Unit tests for the discrete-event engine."""

import pytest

from repro.simulator import Simulator, SimulationError
from repro.simulator.errors import DeadlockError


def test_clock_starts_at_zero():
    sim = Simulator()
    assert sim.now == 0.0


def test_schedule_runs_callback_at_right_time():
    sim = Simulator()
    seen = []
    sim.schedule(2.5, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [2.5]


def test_schedule_order_is_time_order():
    sim = Simulator()
    seen = []
    sim.schedule(3.0, seen.append, "c")
    sim.schedule(1.0, seen.append, "a")
    sim.schedule(2.0, seen.append, "b")
    sim.run()
    assert seen == ["a", "b", "c"]


def test_ties_break_fifo():
    sim = Simulator()
    seen = []
    for i in range(10):
        sim.schedule(1.0, seen.append, i)
    sim.run()
    assert seen == list(range(10))


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(-1.0, lambda: None)


def test_schedule_in_past_rejected():
    sim = Simulator()
    sim.schedule(5.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.at(1.0, lambda: None)


def test_cancelled_callback_does_not_run():
    sim = Simulator()
    seen = []
    handle = sim.schedule(1.0, seen.append, "x")
    handle.cancel()
    sim.run()
    assert seen == []


def test_cancel_is_idempotent():
    sim = Simulator()
    handle = sim.schedule(1.0, lambda: None)
    handle.cancel()
    handle.cancel()
    sim.run()


def test_run_until_stops_clock():
    sim = Simulator()
    seen = []
    sim.schedule(1.0, seen.append, "a")
    sim.schedule(10.0, seen.append, "b")
    final = sim.run(until=5.0)
    assert final == 5.0
    assert seen == ["a"]
    # continuing the run executes the rest
    sim.run()
    assert seen == ["a", "b"]


def test_run_returns_final_time():
    sim = Simulator()
    sim.schedule(7.25, lambda: None)
    assert sim.run() == 7.25


def test_nested_scheduling_from_callback():
    sim = Simulator()
    seen = []

    def outer():
        seen.append(("outer", sim.now))
        sim.schedule(1.0, inner)

    def inner():
        seen.append(("inner", sim.now))

    sim.schedule(2.0, outer)
    sim.run()
    assert seen == [("outer", 2.0), ("inner", 3.0)]


def test_deadlock_detection():
    sim = Simulator()

    def stuck():
        yield sim.event()  # nobody will trigger this

    sim.spawn(stuck())
    with pytest.raises(DeadlockError):
        sim.run(detect_deadlock=True)


def test_no_deadlock_when_tasks_finish():
    sim = Simulator()

    def fine():
        yield sim.timeout(1.0)

    sim.spawn(fine())
    sim.run(detect_deadlock=True)


def test_step_returns_false_when_empty():
    sim = Simulator()
    assert sim.step() is False
