"""Stack/cluster configuration presets."""

import pytest

from repro import config


def test_all_presets_build():
    specs = [
        config.mpich2_nmad(),
        config.mpich2_nmad(rails=("ib", "mx")),
        config.mpich2_nmad_pioman(),
        config.mpich2_nmad_netmod(),
        config.mvapich2(),
        config.openmpi_ib(),
        config.openmpi_pml_mx(),
        config.openmpi_btl_mx(),
    ]
    names = [s.name for s in specs]
    assert len(set(names)) == len(names)  # distinct display names


def test_nmad_default_strategy_by_rail_count():
    assert config.mpich2_nmad().strategy == "aggreg"
    assert config.mpich2_nmad(rails=("ib", "mx")).strategy == "split_balance"
    assert config.mpich2_nmad(rails=("ib",), strategy="default").strategy == "default"


def test_pioman_flag_reflected_in_name():
    assert "PIOMan" in config.mpich2_nmad_pioman().name
    assert "PIOMan" not in config.mpich2_nmad().name


def test_netmod_mode():
    assert config.mpich2_nmad_netmod().mode == "netmod"
    assert config.mpich2_nmad().mode == "direct"


def test_native_presets_have_costs():
    for spec in (config.mvapich2(), config.openmpi_ib(),
                 config.openmpi_pml_mx(), config.openmpi_btl_mx()):
        assert spec.kind == "native"
        assert spec.native_costs is not None


def test_compute_efficiency_property():
    assert config.mpich2_nmad().compute_efficiency == 1.0
    assert config.mvapich2().compute_efficiency == 1.0
    assert config.openmpi_ib().compute_efficiency == pytest.approx(0.92)


def test_cluster_specs():
    pair = config.xeon_pair()
    assert pair.n_nodes == 2
    assert pair.rail_names() == ("ib", "mx")
    g5k = config.grid5000()
    assert g5k.n_nodes == 10
    assert g5k.rail_names() == ("ib",)
    assert g5k.node.flops_per_core == pytest.approx(1.0e9)


def test_registration_cache_defaults():
    # NewMadeleine registers on the fly (paper 4.1.1); MVAPICH2 caches
    assert config.mpich2_nmad().reg_cache is False
    assert config.mvapich2().native_costs.reg_cache is True
