"""Property-based end-to-end tests on the full stacks."""

from hypothesis import given, settings, strategies as st

from repro import config
from repro.runtime import run_mpi


# random message schedules between two ranks: all delivered, in order
@given(st.lists(st.tuples(st.integers(1, 1 << 18),     # size
                          st.integers(0, 2)),          # tag id
                min_size=1, max_size=12),
       st.sampled_from(["direct", "netmod", "pioman", "native", "multirail"]))
@settings(max_examples=40, deadline=None)
def test_random_message_schedule_delivers_in_order(msgs, flavor):
    spec = {
        "direct": config.mpich2_nmad,
        "netmod": config.mpich2_nmad_netmod,
        "pioman": config.mpich2_nmad_pioman,
        "native": config.mvapich2,
        "multirail": lambda: config.mpich2_nmad(rails=("ib", "mx")),
    }[flavor]()

    def program(comm):
        if comm.rank == 0:
            for i, (size, tag) in enumerate(msgs):
                yield from comm.send(1, tag=tag, size=size, data=(tag, i))
            return None
        per_tag = {}
        reqs = []
        for size, tag in msgs:
            req = yield from comm.irecv(src=0, tag=tag)
            reqs.append(req)
        out = yield from comm.waitall(reqs)
        for m in out:
            per_tag.setdefault(m.tag, []).append(m.data[1])
        return per_tag

    r = run_mpi(program, 2, spec, cluster=config.xeon_pair())
    per_tag = r.result(1)
    # per tag, messages arrive in send order
    for tag, indices in per_tag.items():
        assert indices == sorted(indices)
    assert sum(len(v) for v in per_tag.values()) == len(msgs)


@given(st.integers(1, 8),
       st.lists(st.integers(-1000, 1000), min_size=8, max_size=8))
@settings(max_examples=25, deadline=None)
def test_allreduce_matches_python_sum(p, values):
    values = values[:p]

    def program(comm):
        out = yield from comm.allreduce(8, value=values[comm.rank])
        return out

    r = run_mpi(program, p, config.mpich2_nmad(),
                cluster=config.ClusterSpec(n_nodes=p))
    assert r.rank_results == [sum(values)] * p


@given(st.integers(2, 6), st.integers(0, 5))
@settings(max_examples=20, deadline=None)
def test_bcast_from_any_root(p, root_seed):
    root = root_seed % p

    def program(comm):
        data = ("payload", root) if comm.rank == root else None
        out = yield from comm.bcast(256, data=data, root=root)
        return out

    r = run_mpi(program, p, config.mpich2_nmad(),
                cluster=config.ClusterSpec(n_nodes=p))
    assert r.rank_results == [("payload", root)] * p


@given(st.integers(1, 1 << 22))
@settings(max_examples=25, deadline=None)
def test_any_size_roundtrip_preserves_payload(size):
    payload = object()

    def program(comm):
        if comm.rank == 0:
            yield from comm.send(1, tag=0, size=size, data=payload)
            msg = yield from comm.recv(src=1, tag=1)
            return msg.data is payload
        msg = yield from comm.recv(src=0, tag=0)
        yield from comm.send(0, tag=1, size=size, data=msg.data)
        return msg.size == size

    r = run_mpi(program, 2, config.mpich2_nmad(), cluster=config.xeon_pair())
    assert r.result(0) is True
    assert r.result(1) is True


@given(st.lists(st.integers(1, 1 << 16), min_size=1, max_size=8))
@settings(max_examples=25, deadline=None)
def test_elapsed_time_positive_and_finite(sizes):
    def program(comm):
        for i, s in enumerate(sizes):
            if comm.rank == 0:
                yield from comm.send(1, tag=i, size=s)
            else:
                yield from comm.recv(src=0, tag=i)

    r = run_mpi(program, 2, config.mpich2_nmad(), cluster=config.xeon_pair())
    assert 0 < r.elapsed < 1.0
