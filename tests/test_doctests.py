"""Docstring examples must stay runnable (they are the API's first docs)."""

import doctest

import pytest

import repro.hardware.topology
import repro.nmad.strategies.sampling
import repro.runtime.builder
import repro.simulator.engine
import repro.simulator.rng
import repro.threads.marcel

MODULES = [
    repro.simulator.engine,
    repro.simulator.rng,
    repro.hardware.topology,
    repro.threads.marcel,
    repro.runtime.builder,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{results.failed} doctest failures"
    assert results.attempted > 0, "expected at least one example"
