"""Autotuner mechanics: grid, winner picking, table folding, fast run."""

from __future__ import annotations

import json

import pytest

from repro.campaign.cache import ResultCache
from repro.coll import registry, selector
from repro.coll import tuning
from repro.coll.selector import SelectionTable

import repro.mpi.collectives  # noqa: F401  (registers classic algorithms)


def test_tunable_collectives_have_multiple_algorithms():
    tunable = tuning.tunable_collectives()
    assert "allreduce" in tunable and "barrier" in tunable
    assert "reduce" not in tunable      # single algorithm, nothing to tune
    for coll in tunable:
        assert len(registry.names_of(coll)) > 1


def test_tune_points_cover_the_grid():
    procs, sizes = (4, 8), (64, 4096)
    pts = tuning.tune_points(procs=procs, sizes=sizes)
    keys = {p.key for p in pts}
    assert len(keys) == len(pts)        # unique cell keys
    expected = 0
    for coll in tuning.tunable_collectives():
        n_algos = len(registry.names_of(coll))
        n_sizes = 1 if coll == "barrier" else len(sizes)
        expected += n_algos * len(procs) * n_sizes
    assert len(pts) == expected
    # barrier cells are size-0; every point is a "coll" executor point
    for p in pts:
        assert p.kind == "coll"
        if p.params["collective"] == "barrier":
            assert p.params["size"] == 0


def test_tune_points_reject_single_algorithm_collectives():
    with pytest.raises(ValueError, match="nothing to tune"):
        tuning.tune_points(collectives=["reduce"])


def test_pick_winners_argmin_with_registration_order_ties():
    first, second = registry.names_of("allgather")[:2]
    measurements = {
        f"allgather/{first}/p4/64": {"per_op": 2e-6},
        f"allgather/{second}/p4/64": {"per_op": 1e-6},
        # exact tie at 4096: earlier-registered algorithm must win
        f"allgather/{first}/p4/4096": {"per_op": 5e-6},
        f"allgather/{second}/p4/4096": {"per_op": 5e-6},
    }
    winners = tuning.pick_winners(measurements)
    assert winners["allgather/p4/64"] == second
    assert winners["allgather/p4/4096"] == first


def test_bands_are_half_open_and_anchored_at_zero():
    assert tuning._bands([64, 4096, 1024]) == [
        (64, 0, 1024), (1024, 1024, 4096), (4096, 4096, None)]
    assert tuning._bands([8]) == [(8, 0, None)]


def test_build_table_merges_bands_and_appends_catch_all():
    procs, sizes = (4,), (64, 1024, 4096)
    winners = {
        "allgather/p4/64": "bruck",
        "allgather/p4/1024": "bruck",
        "allgather/p4/4096": "ring",
    }
    table = tuning.build_table(winners, procs, sizes)
    rules = table.rules["allgather"]
    # two bands (64+1024 merged) + the unbounded catch-all
    assert [r.algorithm for r in rules] == ["bruck", "ring", "ring"]
    assert rules[0].min_size == 0 and rules[0].max_size == 4096
    assert rules[1].min_size == 4096 and rules[1].max_size is None
    table.validate()
    assert table.choose("allgather", 4, 512) == "bruck"
    assert table.choose("allgather", 4, 1 << 20) == "ring"
    # unmeasured collectives keep their default rules
    assert table.rules["barrier"] == \
        selector.default_table().rules["barrier"]


def test_build_table_skips_redundant_catch_all():
    winners = {"allgather/p4/64": "ring"}
    rules = tuning.build_table(winners, (4,), (64,)).rules["allgather"]
    assert len(rules) == 1
    assert rules[0].algorithm == "ring"
    assert rules[0].min_size == 0 and rules[0].max_size is None
    assert rules[0].min_p == 1 and rules[0].max_p is None


def test_fast_tune_end_to_end(tmp_path):
    cache = ResultCache(str(tmp_path / "cache"))
    report = tuning.tune(fast=True, cache=cache)
    assert report.points == len(report.measurements)
    assert report.cache_misses == report.points
    # every winner is a registered algorithm of its collective
    for key, algo in report.winners.items():
        coll = key.split("/")[0]
        assert algo in registry.names_of(coll)
    report.table.validate()
    # the emitted JSON reloads into an identical, valid table
    again = SelectionTable.loads(report.table.dumps())
    assert again.rules == report.table.rules
    # report serializes clean
    doc = json.loads(json.dumps(report.to_dict(), sort_keys=True))
    assert doc["stats"]["points"] == report.points
    assert "winners" in doc and "table" in doc
    text = report.format_summary()
    assert "coll-tune" in text and f"{report.points} cells" in text

    # warm rerun: fully cached, identical winners and table
    warm = tuning.tune(fast=True, cache=cache)
    assert warm.cache_hits == report.points
    assert warm.cache_misses == 0
    assert warm.winners == report.winners
    assert warm.table.to_json()["rules"] == report.table.to_json()["rules"]
