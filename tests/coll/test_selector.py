"""Selection table semantics: rules, dispatch resolution, JSON round-trip."""

from __future__ import annotations

import pytest

from repro.coll import registry, selector
from repro.coll.selector import Rule, SelectionTable, default_table

import repro.mpi.collectives  # noqa: F401  (registers classic algorithms)


# ---------------------------------------------------------------------------
# Rule matching
# ---------------------------------------------------------------------------

def test_rule_bounds_are_half_open():
    rule = Rule("ring", min_size=64, max_size=1024, min_p=4, max_p=16)
    assert rule.matches(4, 64)
    assert rule.matches(15, 1023)
    assert not rule.matches(4, 1024)      # max_size exclusive
    assert not rule.matches(16, 64)       # max_p exclusive
    assert not rule.matches(3, 64)
    assert not rule.matches(4, 63)


def test_rule_pow2_restriction():
    only_pow2 = Rule("rabenseifner", pow2=True)
    assert only_pow2.matches(8, 0) and only_pow2.matches(1, 0)
    assert not only_pow2.matches(6, 0)
    only_odd = Rule("ring", pow2=False)
    assert only_odd.matches(6, 0) and not only_odd.matches(8, 0)


def test_rule_json_round_trip_drops_defaults():
    rule = Rule("ring")
    assert rule.to_json() == {"algorithm": "ring"}
    full = Rule("ring", min_size=1, max_size=2, min_p=3, max_p=4, pow2=False)
    assert Rule.from_json(full.to_json()) == full


# ---------------------------------------------------------------------------
# table choose / validate / serialization
# ---------------------------------------------------------------------------

def test_first_matching_rule_wins():
    table = SelectionTable(rules={"allreduce": (
        Rule("recursive_doubling", max_size=1024),
        Rule("rabenseifner", pow2=True),
        Rule("ring"),
    )})
    assert table.choose("allreduce", 8, 512) == "recursive_doubling"
    assert table.choose("allreduce", 8, 4096) == "rabenseifner"
    assert table.choose("allreduce", 6, 4096) == "ring"


def test_choose_without_catch_all_raises():
    table = SelectionTable(rules={"allreduce": (
        Rule("recursive_doubling", max_size=1024),)})
    with pytest.raises(LookupError):
        table.choose("allreduce", 8, 4096)


def test_validate_rejects_missing_catch_all():
    table = SelectionTable(rules={"allreduce": (
        Rule("recursive_doubling", max_size=1024),)})
    with pytest.raises(ValueError, match="catch-all"):
        table.validate()


def test_validate_rejects_unknown_names():
    with pytest.raises(ValueError, match="unknown collective"):
        SelectionTable(rules={"allsum": (Rule("ring"),)}).validate()
    with pytest.raises(KeyError):
        SelectionTable(rules={"allreduce": (Rule("quantum"),)}).validate()


def test_default_table_validates_and_covers_all_collectives():
    table = default_table()
    table.validate()
    assert set(table.rules) == set(registry.COLLECTIVES)
    for coll in registry.COLLECTIVES:
        for p in (1, 2, 3, 7, 8, 64):
            for size in (0, 1, 8192, 32 * 1024, 10**9):
                assert table.choose(coll, p, size) in \
                    registry.names_of(coll)


def test_default_table_encodes_documented_cutoffs():
    table = default_table()
    assert table.choose("allreduce", 8, 4096) == "recursive_doubling"
    assert table.choose("allreduce", 8, 64 * 1024) == "rabenseifner"
    assert table.choose("allreduce", 6, 64 * 1024) == "ring"
    assert table.choose("bcast", 16, 4096) == "binomial"
    assert table.choose("bcast", 16, 1 << 20) == "scatter_allgather"
    assert table.choose("bcast", 4, 64 * 1024) == "binomial"


def test_table_json_round_trip():
    table = default_table()
    again = SelectionTable.loads(table.dumps())
    assert again.rules == table.rules
    assert again.origin == table.origin
    with pytest.raises(ValueError, match="version"):
        SelectionTable.from_json({"version": 99, "rules": {}})


def test_set_table_swaps_the_active_table():
    tuned = SelectionTable(origin="test", rules={
        **default_table().rules, "allgather": (Rule("bruck"),)})
    assert selector.active_table().choose("allgather", 8, 64) == "ring"
    try:
        selector.set_table(tuned)
        assert selector.active_table().choose("allgather", 8, 64) == "bruck"
    finally:
        selector.set_table(None)
    assert selector.active_table().choose("allgather", 8, 64) == "ring"


# ---------------------------------------------------------------------------
# resolve: force > table > payload fallback
# ---------------------------------------------------------------------------

def test_resolve_follows_the_table():
    assert selector.resolve("allreduce", 8, 64).name == "recursive_doubling"
    assert selector.resolve("allreduce", 8, 1 << 20).name == "rabenseifner"


def test_forced_overrides_and_restores():
    with selector.forced("allreduce", "ring"):
        assert selector.resolve("allreduce", 2, 1).name == "ring"
        with selector.forced("allreduce", "rabenseifner"):
            assert selector.resolve("allreduce", 2, 1).name == "rabenseifner"
        # nesting restores the *outer* force, not the table
        assert selector.resolve("allreduce", 2, 1).name == "ring"
    assert selector.resolve("allreduce", 2, 1).name == "recursive_doubling"


def test_forced_unknown_algorithm_fails_fast():
    with pytest.raises(KeyError):
        with selector.forced("allreduce", "quantum"):
            pass


def test_segmented_algorithm_falls_back_on_opaque_payload():
    # rabenseifner needs a vector; a dict payload retreats to the fallback
    assert selector.resolve("allreduce", 8, 1 << 20,
                            payload={"x": 1}).name == "recursive_doubling"
    assert selector.resolve("allreduce", 8, 1 << 20,
                            payload=[1, 2]).name == "rabenseifner"
    assert selector.resolve("allreduce", 8, 1 << 20,
                            payload=None).name == "rabenseifner"
    # forcing does not bypass payload compatibility either
    with selector.forced("allreduce", "ring"):
        assert selector.resolve("allreduce", 2, 1,
                                payload="blob").name == "recursive_doubling"


def test_registry_fallbacks_are_payload_agnostic():
    for coll in registry.COLLECTIVES:
        fb = registry.fallback_of(coll)
        assert not fb.needs_vector
        assert fb.name in registry.names_of(coll)
