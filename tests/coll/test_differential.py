"""Differential collective harness: every algorithm == linear reference.

Each registered algorithm variant of each collective is forced (via
``selector.forced``) and executed over the simulated stack with real
data payloads; every rank's result is compared *exactly* against a
naive pure-Python linear reference executor.

Segmented algorithms (ring/Rabenseifner allreduce) carry the MPI
built-in-op contract: the reduction op must be elementwise and
commutative, so the harness reduces integer vectors with elementwise
ops — exact under any association order, making byte-exact comparison
against the linear fold legitimate.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro import config
from repro.coll import registry, selector
from repro.runtime import run_mpi

import repro.mpi.collectives  # noqa: F401  (registers classic algorithms)

#: acceptance grid — non-power-of-two counts included deliberately
PROCS = [2, 3, 4, 5, 8, 16]

#: elementwise commutative ops (the segmented-algorithm contract)
OPS = {
    "sum": lambda a, b: [x + y for x, y in zip(a, b)],
    "max": lambda a, b: [max(x, y) for x, y in zip(a, b)],
    "min": lambda a, b: [min(x, y) for x, y in zip(a, b)],
}


def run_coll(program, p):
    return run_mpi(program, p, config.mpich2_nmad(),
                   cluster=config.ClusterSpec(n_nodes=p))


def vectors(p, n, seed):
    """One integer vector of ``n`` elements per rank, deterministic."""
    rng = random.Random(seed)
    return [[rng.randrange(-50, 50) for _ in range(n)] for _ in range(p)]


def ref_fold(vecs, op):
    """The linear reference reduction: op applied in rank order."""
    acc = vecs[0]
    for v in vecs[1:]:
        acc = op(acc, v)
    return acc


# ---------------------------------------------------------------------------
# per-collective differential drivers
# ---------------------------------------------------------------------------

def check_allreduce(algo, p, n, op_name, seed=0):
    inputs = vectors(p, n, seed)
    op = OPS[op_name]

    def program(comm):
        out = yield from comm.allreduce(max(8 * n, 1),
                                        value=list(inputs[comm.rank]), op=op)
        return out

    with selector.forced("allreduce", algo):
        r = run_coll(program, p)
    expect = ref_fold(inputs, op)
    assert r.rank_results == [expect] * p, (algo, p, n, op_name)


def check_bcast(algo, p, n, root, seed=0):
    payload = vectors(1, n, seed)[0]

    def program(comm):
        data = list(payload) if comm.rank == root else None
        out = yield from comm.bcast(max(8 * n, 1), data=data, root=root)
        return out

    with selector.forced("bcast", algo):
        r = run_coll(program, p)
    assert r.rank_results == [payload] * p, (algo, p, n, root)


def check_bcast_opaque(algo, p, root):
    """Non-list payloads must survive every bcast algorithm verbatim."""
    payload = {"tensor": "weights", "epoch": 7}

    def program(comm):
        data = payload if comm.rank == root else None
        out = yield from comm.bcast(4096, data=data, root=root)
        return out

    with selector.forced("bcast", algo):
        r = run_coll(program, p)
    assert r.rank_results == [payload] * p, (algo, p, root)


def check_reduce(algo, p, n, root, op_name, seed=0):
    inputs = vectors(p, n, seed)
    op = OPS[op_name]

    def program(comm):
        out = yield from comm.reduce(max(8 * n, 1),
                                     value=list(inputs[comm.rank]),
                                     root=root, op=op)
        return out

    with selector.forced("reduce", algo):
        r = run_coll(program, p)
    expect = ref_fold(inputs, op)
    for rank, got in enumerate(r.rank_results):
        if rank == root:
            assert got == expect, (algo, p, n, root, op_name)
        else:
            assert got is None


def check_allgather(algo, p, seed=0):
    inputs = [("rank", r, seed) for r in range(p)]

    def program(comm):
        out = yield from comm.allgather(64, value=inputs[comm.rank])
        return out

    with selector.forced("allgather", algo):
        r = run_coll(program, p)
    assert r.rank_results == [inputs] * p, (algo, p)


def check_alltoall(algo, p, seed=0):
    rng = random.Random(seed)
    matrix = [[rng.randrange(1000) for _ in range(p)] for _ in range(p)]
    expect = [[matrix[src][dst] for src in range(p)] for dst in range(p)]

    def program(comm):
        out = yield from comm.alltoall(64, values=list(matrix[comm.rank]))
        return out

    with selector.forced("alltoall", algo):
        r = run_coll(program, p)
    for rank, got in enumerate(r.rank_results):
        assert got == expect[rank], (algo, p, rank)


def check_barrier(algo, p):
    """Every barrier algorithm must hold ranks until the last arrival."""

    def program(comm):
        yield from comm.compute((comm.rank + 1) * 10e-6)
        yield from comm.barrier()
        return comm.sim.now

    with selector.forced("barrier", algo):
        r = run_coll(program, p)
    latest = p * 10e-6
    assert all(t >= latest for t in r.rank_results), (algo, p)


# ---------------------------------------------------------------------------
# exhaustive acceptance grid: every variant at p in {2, 3, 4, 5, 8, 16}
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("p", PROCS)
@pytest.mark.parametrize("algo", registry.names_of("allreduce"))
def test_allreduce_matches_reference(algo, p):
    check_allreduce(algo, p, n=13, op_name="sum")


@pytest.mark.parametrize("p", PROCS)
@pytest.mark.parametrize("algo", registry.names_of("bcast"))
def test_bcast_matches_reference(algo, p):
    check_bcast(algo, p, n=13, root=p - 1)


@pytest.mark.parametrize("p", PROCS)
@pytest.mark.parametrize("algo", registry.names_of("bcast"))
def test_bcast_opaque_payload(algo, p):
    check_bcast_opaque(algo, p, root=0)


@pytest.mark.parametrize("p", PROCS)
@pytest.mark.parametrize("algo", registry.names_of("reduce"))
def test_reduce_matches_reference(algo, p):
    check_reduce(algo, p, n=13, root=p // 2, op_name="sum")


@pytest.mark.parametrize("p", PROCS)
@pytest.mark.parametrize("algo", registry.names_of("allgather"))
def test_allgather_matches_reference(algo, p):
    check_allgather(algo, p)


@pytest.mark.parametrize("p", PROCS)
@pytest.mark.parametrize("algo", registry.names_of("alltoall"))
def test_alltoall_matches_reference(algo, p):
    check_alltoall(algo, p)


@pytest.mark.parametrize("p", PROCS)
@pytest.mark.parametrize("algo", registry.names_of("barrier"))
def test_barrier_synchronizes(algo, p):
    check_barrier(algo, p)


@pytest.mark.parametrize("algo", registry.names_of("allreduce"))
def test_allreduce_p1_is_identity(algo):
    check_allreduce(algo, p=1, n=5, op_name="sum")


@pytest.mark.parametrize("algo", registry.names_of("bcast"))
def test_bcast_p1_is_identity(algo):
    check_bcast(algo, p=1, n=5, root=0)


@pytest.mark.parametrize("algo", registry.names_of("allgather"))
def test_allgather_p1(algo):
    check_allgather(algo, p=1)


@pytest.mark.parametrize("algo", registry.names_of("alltoall"))
def test_alltoall_p1(algo):
    check_alltoall(algo, p=1)


@pytest.mark.parametrize("algo", registry.names_of("allreduce"))
def test_allreduce_empty_vector(algo):
    """Zero-element vectors (size floor 1 byte) survive segmentation."""
    check_allreduce(algo, p=5, n=0, op_name="sum")


# ---------------------------------------------------------------------------
# hypothesis sweep over random (p, size, root, op)
# ---------------------------------------------------------------------------

@given(p=st.sampled_from(PROCS + [1, 6, 7]),
       n=st.integers(min_value=0, max_value=40),
       op_name=st.sampled_from(sorted(OPS)),
       seed=st.integers(min_value=0, max_value=2**16),
       data=st.data())
@settings(max_examples=25, deadline=None)
def test_allreduce_differential_random(p, n, op_name, seed, data):
    algo = data.draw(st.sampled_from(registry.names_of("allreduce")))
    check_allreduce(algo, p, n, op_name, seed=seed)


@given(p=st.sampled_from(PROCS + [1, 6, 7]),
       n=st.integers(min_value=0, max_value=40),
       seed=st.integers(min_value=0, max_value=2**16),
       data=st.data())
@settings(max_examples=25, deadline=None)
def test_bcast_differential_random(p, n, seed, data):
    algo = data.draw(st.sampled_from(registry.names_of("bcast")))
    root = data.draw(st.integers(min_value=0, max_value=p - 1))
    check_bcast(algo, p, n, root, seed=seed)


@given(p=st.sampled_from(PROCS + [1, 6, 7]),
       seed=st.integers(min_value=0, max_value=2**16),
       data=st.data())
@settings(max_examples=15, deadline=None)
def test_allgather_alltoall_differential_random(p, seed, data):
    ag = data.draw(st.sampled_from(registry.names_of("allgather")))
    a2a = data.draw(st.sampled_from(registry.names_of("alltoall")))
    check_allgather(ag, p, seed=seed)
    check_alltoall(a2a, p, seed=seed)


@given(p=st.sampled_from(PROCS + [1, 6, 7]),
       n=st.integers(min_value=0, max_value=30),
       op_name=st.sampled_from(sorted(OPS)),
       seed=st.integers(min_value=0, max_value=2**16),
       data=st.data())
@settings(max_examples=15, deadline=None)
def test_reduce_differential_random(p, n, op_name, seed, data):
    algo = data.draw(st.sampled_from(registry.names_of("reduce")))
    root = data.draw(st.integers(min_value=0, max_value=p - 1))
    check_reduce(algo, p, n, root, op_name, seed=seed)
