"""Collective dispatch tracing: coll.begin/coll.end records + metrics."""

from __future__ import annotations

from repro import config
from repro.coll import selector
from repro.observability import (ALL_LAYERS, CATEGORIES, COLL_LAYERS,
                                 layer_of)
from repro.observability.metrics import TraceMetrics
from repro.runtime import run_mpi
from repro.simulator import Trace

import repro.mpi.collectives  # noqa: F401  (registers classic algorithms)

P = 4


def run_traced(program, nprocs=P):
    trace = Trace()
    run_mpi(program, nprocs, config.mpich2_nmad(),
            cluster=config.ClusterSpec(n_nodes=nprocs), trace=trace)
    return trace


def mixed_collectives(comm):
    yield from comm.barrier()
    yield from comm.allreduce(1024, value=[1.0] * 8)
    yield from comm.bcast(256, data="blob" if comm.rank == 0 else None)
    return comm.rank


def test_coll_layer_is_documented_but_not_a_netpipe_layer():
    assert COLL_LAYERS == ("coll",)
    assert "coll" in ALL_LAYERS
    for cat in ("coll.begin", "coll.end"):
        assert cat in CATEGORIES
        assert layer_of(cat) == "coll"


def test_dispatch_emits_begin_end_pairs_per_rank():
    trace = run_traced(mixed_collectives)
    begins = trace.filter("coll.begin")
    ends = trace.filter("coll.end")
    # 3 collectives x P ranks, one begin and one end each
    assert len(begins) == len(ends) == 3 * P
    for rec in begins + ends:
        assert rec.data["coll"] in ("barrier", "allreduce", "bcast")
        assert rec.data["p"] == P
        assert 0 <= rec.data["rank"] < P
    for rec in ends:
        assert rec.data["dur"] >= 0.0
    # the recorded algorithm is exactly what the selector resolves
    for rec in begins:
        expect = selector.resolve(rec.data["coll"], P,
                                  rec.data["size"]).name
        assert rec.data["algo"] == expect


def test_forced_algorithm_lands_in_the_trace():
    def program(comm):
        yield from comm.allreduce(64)
        return None

    with selector.forced("allreduce", "ring"):
        trace = run_traced(program)
    assert {rec.data["algo"] for rec in trace.filter("coll.begin")} \
        == {"ring"}


def test_coll_metrics_counters_and_histograms():
    trace = Trace()
    metrics = TraceMetrics().attach(trace)
    run_mpi(mixed_collectives, P, config.mpich2_nmad(),
            cluster=config.ClusterSpec(n_nodes=P), trace=trace)
    reg = metrics.registry
    small = selector.resolve("allreduce", P, 1024).name
    assert reg.counter("coll.calls", f"allreduce/{small}").value == P
    assert reg.counter("coll.calls", "bcast/binomial").value == P
    assert reg.counter("coll.calls", "barrier/dissemination").value == P
    hist = reg.histogram("coll.time", f"allreduce/{small}")
    assert hist.count == P
    assert hist.total >= 0.0


def test_untraced_runs_emit_nothing():
    """The fast path must not call sim.record at all when untraced."""
    r = run_mpi(mixed_collectives, P, config.mpich2_nmad(),
                cluster=config.ClusterSpec(n_nodes=P))
    assert sorted(r.rank_results) == list(range(P))
