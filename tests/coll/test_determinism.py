"""ext_collectives determinism: pool width, cache warmth, tracing.

``--workers 4``, ``--workers 1``, and a warm-cache rerun must produce
byte-identical merged data (compared through ``canonical_json``), and
attaching a trace must not move a single simulated timestamp.
"""

from __future__ import annotations

from repro import config
from repro.campaign import ResultCache, canonical_json, run_campaign
from repro.campaign.cache import _as_plain
from repro.simulator import Trace
from repro.workloads.collbench import run_collbench

MODULES = ["ext_collectives"]


def _frozen(report) -> str:
    return canonical_json(_as_plain(report.modules))


def test_parallel_equals_serial() -> None:
    serial = run_campaign(MODULES, fast=True, workers=1, cache=None)
    pooled = run_campaign(MODULES, fast=True, workers=4, cache=None)
    assert serial.points == pooled.points > 0
    assert _frozen(serial) == _frozen(pooled)


def test_cached_rerun_is_byte_identical(tmp_path) -> None:
    cache = ResultCache(str(tmp_path / "cache"))
    cold = run_campaign(MODULES, fast=True, workers=2, cache=cache)
    assert cold.cache_misses == cold.points
    warm = run_campaign(MODULES, fast=True, workers=1, cache=cache)
    assert warm.all_cached and warm.cache_misses == 0
    assert _frozen(cold) == _frozen(warm)


def test_campaign_matches_module_run() -> None:
    from repro.experiments import ext_collectives

    report = run_campaign(MODULES, fast=True, cache=None)
    direct = ext_collectives.run(fast=True)
    assert canonical_json(_as_plain(report.modules["ext_collectives"])) \
        == canonical_json(_as_plain(direct))


def test_fast_grid_still_pins_the_crossovers() -> None:
    data = run_campaign(MODULES, fast=True, cache=None) \
        .modules["ext_collectives"]
    assert all(data["crossover"].values()), data["crossover"]


def test_tracing_does_not_perturb_timing() -> None:
    """Observability is pure measurement: per_op identical on/off."""
    spec = config.mpich2_nmad()
    for coll, algo, size in [("allreduce", "ring", 65536),
                             ("bcast", "scatter_allgather", 65536),
                             ("allgather", "bruck", 1024),
                             ("barrier", "tree", 0)]:
        off = run_collbench(spec, 8, coll, size, algorithm=algo,
                            reps=3, warmup=1)
        on = run_collbench(spec, 8, coll, size, algorithm=algo,
                           reps=3, warmup=1, trace=Trace())
        assert on.per_op == off.per_op, (coll, algo)
        assert on.elapsed == off.elapsed, (coll, algo)
