"""Sampling edge cases: heterogeneous rails, tiny splits, window=1 rails."""

import pytest

from repro.hardware import build_cluster, presets
from repro.nmad import NmadCore, NmadCosts, SendRecvInterface
from repro.nmad.drivers import make_ib_driver, make_mx_driver
from repro.nmad.strategies import NetworkSampler, make_strategy
from repro.simulator import Simulator

from tests.nmad.conftest import NmadWorld
from tests.nmad.test_core_eager import run_transfer


def _hetero_drivers():
    sim = Simulator()
    cluster = build_cluster(sim, 2, presets.XEON_NODE,
                            [presets.IB_CONNECTX, presets.MX_MYRI10G])
    node = cluster.node(0)
    return [make_ib_driver(node.nics["ib"]), make_mx_driver(node.nics["mx"])]


def test_sampled_bandwidths_differ_across_rails():
    ib, mx = _hetero_drivers()
    sampler = NetworkSampler()
    assert sampler.sampled_bandwidth(ib) > sampler.sampled_bandwidth(mx)


def test_ordered_puts_lowest_latency_first():
    ib, mx = _hetero_drivers()
    sampler = NetworkSampler()
    assert [d.name for d in sampler.ordered([mx, ib])] == ["ib", "mx"]
    assert sampler.fastest([mx, ib]) is ib


def test_split_tiny_sizes_stay_exact():
    drivers = _hetero_drivers()
    sampler = NetworkSampler()
    for size in (1, 2, 3, 7):
        shares = sampler.split(drivers, size)
        assert sum(c for _, c in shares) == size
        assert all(c > 0 for _, c in shares)  # zero chunks are filtered


def test_split_single_driver_takes_all():
    ib, _ = _hetero_drivers()
    shares = NetworkSampler().split([ib], 12345)
    assert shares == [(ib, 12345)]


def test_split_input_validation():
    drivers = _hetero_drivers()
    sampler = NetworkSampler()
    with pytest.raises(ValueError):
        sampler.split([], 100)
    with pytest.raises(ValueError):
        sampler.split(drivers, 0)
    with pytest.raises(ValueError):
        NetworkSampler(ref_size=0)


def _window1_world():
    """Two-rail split_balance world where each rail admits one pw."""
    w = NmadWorld.__new__(NmadWorld)
    w.sim = Simulator()
    w.cluster = build_cluster(
        w.sim, 2, presets.XEON_NODE,
        [presets.IB_CONNECTX, presets.MX_MYRI10G])
    w.cores, w.ifaces = [], []
    for rank in (0, 1):
        node = w.cluster.node(rank)
        core = NmadCore(w.sim, rank, rank, mem=node.mem,
                        registrar=node.make_registrar(cache=False),
                        costs=NmadCosts())
        core.add_driver(make_ib_driver(node.nics["ib"], window=1))
        core.add_driver(make_mx_driver(node.nics["mx"], window=1))
        core.set_strategy(make_strategy("split_balance", core))
        w.cores.append(core)
        w.ifaces.append(SendRecvInterface(w.sim, core))
    return w


def test_window_one_rejected_below_one():
    node = build_cluster(Simulator(), 2, presets.XEON_NODE,
                         [presets.IB_CONNECTX]).node(0)
    with pytest.raises(ValueError):
        make_ib_driver(node.nics["ib"], window=0)


def test_window_one_split_still_completes():
    w = _window1_world()
    payload = b"z" * (1 << 20)
    sreq, rreq, _ = run_transfer(w, len(payload), data=payload)
    assert sreq.complete and rreq.complete
    assert rreq.data is payload


def test_window_one_backpressure_queues_and_drains():
    """Many back-to-back large sends must all land despite 1-deep windows."""
    w = _window1_world()
    sim = w.sim
    tx, rx = w.ifaces
    n, size = 6, 1 << 19
    got = []

    def sender():
        reqs = []
        for i in range(n):
            req = yield from tx.nm_sr_isend(1, ("m", i), b"x" * size, size)
            reqs.append(req)
        for req in reqs:
            yield from tx.nm_sr_rwait(req)

    def receiver():
        for i in range(n):
            req = yield from rx.nm_sr_irecv(0, ("m", i), size)
            yield from rx.nm_sr_rwait(req)
            got.append(i)

    sim.spawn(sender())
    sim.spawn(receiver())
    sim.run()
    assert got == list(range(n))


def test_window_one_gates_window_free():
    w = _window1_world()
    drv = w.cores[0].drivers[0]
    assert drv.window_free()
    drv.inflight = 1
    assert not drv.window_free()
    drv.inflight = 0
    assert drv.window_free()


def test_window_one_vs_default_window_same_result():
    """The window depth changes pacing, never correctness."""
    results = []
    for make in (NmadWorld, None):
        w = NmadWorld(rails=("ib", "mx"), strategy="split_balance") \
            if make else _window1_world()
        payload = b"q" * ((1 << 19) + 13)
        _, rreq, elapsed = run_transfer(w, len(payload), data=payload)
        assert rreq.data is payload
        results.append(elapsed)
    assert results[0] > 0 and results[1] > 0
