"""Eager-protocol behaviour of the NewMadeleine core."""

import pytest

from repro.nmad.core import ANY, ProtocolError


def run_transfer(world, size, tag="t", data=None):
    """One send 0->1, returning (send_req, recv_req, elapsed)."""
    sim = world.sim
    tx, rx = world.ifaces

    def sender():
        req = yield from tx.nm_sr_isend(1, tag, data, size)
        yield from tx.nm_sr_rwait(req)
        return req

    def receiver():
        req = yield from rx.nm_sr_irecv(0, tag, size)
        yield from rx.nm_sr_rwait(req)
        return req

    s = sim.spawn(sender())
    r = sim.spawn(receiver())
    sim.run()
    return s.value, r.value, sim.now


def test_small_message_delivered(world):
    sreq, rreq, _ = run_transfer(world, 64, data=b"x" * 64)
    assert sreq.complete and rreq.complete
    assert rreq.data == b"x" * 64
    assert rreq.size == 64


def test_payload_object_passes_through(world):
    payload = {"k": [1, 2, 3]}
    _, rreq, _ = run_transfer(world, 100, data=payload)
    assert rreq.data is payload


def test_eager_latency_close_to_calibration(world):
    """nmad raw latency over IB should be ~1.8 us (paper Section 4.1.1)."""
    _, _, elapsed = run_transfer(world, 4)
    assert elapsed == pytest.approx(1.8e-6, rel=0.15)


def test_unexpected_message_then_late_recv(world):
    sim = world.sim
    tx, rx = world.ifaces

    def sender():
        req = yield from tx.nm_sr_isend(1, "u", b"data", 4)
        yield from tx.nm_sr_rwait(req)

    def receiver():
        yield sim.timeout(100e-6)  # message arrives long before this
        req = yield from rx.nm_sr_irecv(0, "u", 4)
        yield from rx.nm_sr_rwait(req)
        return (req.data, sim.now)

    sim.spawn(sender())
    r = sim.spawn(receiver())
    sim.run()
    data, t = r.value
    assert data == b"data"
    assert t >= 100e-6


def test_messages_match_in_order_same_tag(world):
    sim = world.sim
    tx, rx = world.ifaces
    n = 5

    def sender():
        reqs = []
        for i in range(n):
            req = yield from tx.nm_sr_isend(1, "seq", f"msg{i}", 8)
            reqs.append(req)
        for req in reqs:
            yield from tx.nm_sr_rwait(req)

    def receiver():
        out = []
        for _ in range(n):
            req = yield from rx.nm_sr_irecv(0, "seq", 8)
            yield from rx.nm_sr_rwait(req)
            out.append(req.data)
        return out

    sim.spawn(sender())
    r = sim.spawn(receiver())
    sim.run()
    assert r.value == [f"msg{i}" for i in range(n)]


def test_tags_matched_independently(world):
    sim = world.sim
    tx, rx = world.ifaces

    def sender():
        r1 = yield from tx.nm_sr_isend(1, "a", "on-a", 8)
        r2 = yield from tx.nm_sr_isend(1, "b", "on-b", 8)
        yield from tx.nm_sr_rwait(r1)
        yield from tx.nm_sr_rwait(r2)

    def receiver():
        # post in the opposite tag order
        rb = yield from rx.nm_sr_irecv(0, "b", 8)
        ra = yield from rx.nm_sr_irecv(0, "a", 8)
        yield from rx.nm_sr_rwait(rb)
        yield from rx.nm_sr_rwait(ra)
        return (ra.data, rb.data)

    sim.spawn(sender())
    r = sim.spawn(receiver())
    sim.run()
    assert r.value == ("on-a", "on-b")


def test_probe_sees_unexpected(world):
    sim = world.sim
    tx, rx = world.ifaces

    def sender():
        req = yield from tx.nm_sr_isend(1, "p", b"??", 2)
        yield from tx.nm_sr_rwait(req)

    def prober():
        yield sim.timeout(50e-6)
        return world.cores[1].probe("p")

    sim.spawn(sender())
    r = sim.spawn(prober())
    sim.run()
    assert r.value == (0, 2)


def test_probe_returns_none_without_message(world):
    assert world.cores[1].probe("nothing") is None


def test_probe_with_specific_source(world):
    sim = world.sim
    tx, rx = world.ifaces

    def sender():
        req = yield from tx.nm_sr_isend(1, "s", b"z", 1)
        yield from tx.nm_sr_rwait(req)

    sim.spawn(sender())
    sim.run()
    assert world.cores[1].probe("s", src=0) == (0, 1)
    assert world.cores[1].probe("s", src=5) is None


def test_irecv_any_source_rejected(world):
    def bad():
        yield from world.cores[1].irecv(ANY, "t")

    world.sim.spawn(bad())
    with pytest.raises(ProtocolError):
        world.sim.run()


def test_request_cancellation_unsupported(world):
    sim = world.sim

    def receiver():
        req = yield from world.ifaces[1].nm_sr_irecv(0, "never", 8)
        return req

    r = sim.spawn(receiver())
    sim.run()
    with pytest.raises(NotImplementedError):
        r.value.cancel()


def test_send_complete_at_local_injection_before_recv_posted(world):
    """Eager sends complete locally even if the receiver never posts."""
    sim = world.sim
    tx, _ = world.ifaces

    def sender():
        req = yield from tx.nm_sr_isend(1, "orphan", b"x", 1)
        yield from tx.nm_sr_rwait(req)
        return sim.now

    s = sim.spawn(sender())
    sim.run()
    assert s.value < 5e-6
    # message sits in the peer's unexpected list
    assert world.cores[1].probe("orphan") == (0, 1)
