"""Strategy behaviour: FIFO, aggregation, multirail split, sampling."""

import pytest

from repro.hardware import build_cluster, presets
from repro.nmad import NmadCore, NmadCosts
from repro.nmad.drivers import make_ib_driver, make_mx_driver
from repro.nmad.strategies import NetworkSampler, make_strategy
from repro.simulator import Simulator, Trace

from tests.nmad.conftest import NmadWorld
from tests.nmad.test_core_eager import run_transfer


def test_make_strategy_rejects_unknown():
    with pytest.raises(ValueError, match="unknown strategy"):
        make_strategy("nope", core=None)


def test_make_strategy_names():
    for name in ("default", "aggreg", "split_balance"):
        s = make_strategy(name, core=None)
        assert s.name == name


# ---------------------------------------------------------------------------
# sampling
# ---------------------------------------------------------------------------

def build_two_rail_core():
    sim = Simulator()
    cluster = build_cluster(sim, 2, presets.XEON_NODE,
                            [presets.IB_CONNECTX, presets.MX_MYRI10G])
    node = cluster.node(0)
    core = NmadCore(sim, 0, 0, node.mem, node.make_registrar(False))
    core.add_driver(make_ib_driver(node.nics["ib"]))
    core.add_driver(make_mx_driver(node.nics["mx"]))
    core.set_strategy(make_strategy("split_balance", core))
    return sim, core


def test_sampler_prefers_ib_for_latency():
    _, core = build_two_rail_core()
    assert core.fastest_driver().name == "ib"


def test_sampler_split_sums_to_size():
    _, core = build_two_rail_core()
    sampler = NetworkSampler()
    for size in (1 << 17, 1 << 20, (1 << 20) + 7, 12345678):
        shares = sampler.split(core.drivers, size)
        assert sum(c for _, c in shares) == size
        assert all(c > 0 for _, c in shares)


def test_sampler_split_proportional_to_bandwidth():
    _, core = build_two_rail_core()
    sampler = NetworkSampler()
    shares = dict((d.name, c) for d, c in sampler.split(core.drivers, 1 << 20))
    # IB is 1.5 GB/s vs MX 1.2 GB/s -> IB share ~55%
    assert shares["ib"] > shares["mx"]
    assert shares["ib"] / (1 << 20) == pytest.approx(1.5 / 2.7, abs=0.02)


def test_sampler_rejects_bad_inputs():
    sampler = NetworkSampler()
    with pytest.raises(ValueError):
        sampler.split([], 100)
    _, core = build_two_rail_core()
    with pytest.raises(ValueError):
        sampler.split(core.drivers, 0)
    with pytest.raises(ValueError):
        NetworkSampler(ref_size=0)
    with pytest.raises(ValueError):
        sampler.fastest([])


# ---------------------------------------------------------------------------
# aggregation
# ---------------------------------------------------------------------------

def count_tx_frames(strategy_name, n_messages, size):
    trace = Trace(categories={"nic.tx"})
    world = NmadWorld(strategy=strategy_name)
    world.sim.trace = trace
    sim = world.sim
    tx, rx = world.ifaces

    def sender():
        reqs = []
        for i in range(n_messages):
            req = yield from tx.nm_sr_isend(1, "t", i, size)
            reqs.append(req)
        for req in reqs:
            yield from tx.nm_sr_rwait(req)

    def receiver():
        out = []
        for _ in range(n_messages):
            req = yield from rx.nm_sr_irecv(0, "t", size)
            yield from rx.nm_sr_rwait(req)
            out.append(req.data)
        return out

    sim.spawn(sender())
    r = sim.spawn(receiver())
    sim.run()
    assert r.value == list(range(n_messages))
    return trace.count("nic.tx"), sim.now


def test_aggregation_reduces_frame_count():
    # 8 KiB messages saturate the NIC faster than the sender submits,
    # so pending sends accumulate in the strategy and merge.
    frames_default, _ = count_tx_frames("default", 16, 8 << 10)
    frames_aggreg, _ = count_tx_frames("aggreg", 16, 8 << 10)
    assert frames_default == 16
    assert frames_aggreg < frames_default


def burst_behind_blocker(strategy_name, n_small=64, small=512):
    """A large send occupies the NIC; small sends pile up behind it."""
    trace = Trace(categories={"nic.tx"})
    world = NmadWorld(strategy=strategy_name)
    world.sim.trace = trace
    sim = world.sim
    tx, rx = world.ifaces

    def sender():
        blocker = yield from tx.nm_sr_isend(1, "blk", None, 16 << 10)
        reqs = []
        for i in range(n_small):
            req = yield from tx.nm_sr_isend(1, "s", i, small)
            reqs.append(req)
        yield from tx.nm_sr_rwait(blocker)
        for req in reqs:
            yield from tx.nm_sr_rwait(req)
        return sim.now

    def receiver():
        req = yield from rx.nm_sr_irecv(0, "blk", 16 << 10)
        yield from rx.nm_sr_rwait(req)
        out = []
        for _ in range(n_small):
            r = yield from rx.nm_sr_irecv(0, "s", small)
            yield from rx.nm_sr_rwait(r)
            out.append(r.data)
        return out

    snd = sim.spawn(sender())
    r = sim.spawn(receiver())
    sim.run()
    assert r.value == list(range(n_small))
    return trace.count("nic.tx"), snd.value


def test_aggregation_faster_for_queued_small_messages():
    """The paper's core claim: merging amortizes per-message NIC costs.

    The observable win is on the injection side: the NIC drains the
    burst sooner, so the sender's local completions land earlier.
    (End-to-end time is receiver-processing-bound either way.)
    """
    frames_default, t_default = burst_behind_blocker("default")
    frames_aggreg, t_aggreg = burst_behind_blocker("aggreg")
    assert frames_aggreg < frames_default
    assert t_aggreg < t_default


def test_no_aggregation_when_nic_keeps_up():
    # tiny messages never queue: each goes out alone even with aggreg
    frames, _ = count_tx_frames("aggreg", 8, 8)
    assert frames == 8


def test_aggregation_respects_max_pw_size():
    # messages of 8 KiB with a 32 KiB pw limit: at most 3 per pw
    # (3*(8K+32) < 32K but 4*(8K+32) > 32K)
    frames, _ = count_tx_frames("aggreg", 8, 8 << 10)
    assert frames >= 3  # cannot all fit in one pw


def test_rendezvous_payload_never_aggregates():
    trace = Trace(categories={"nic.tx"})
    world = NmadWorld(strategy="aggreg")
    world.sim.trace = trace
    run_transfer(world, 1 << 20)
    sizes = sorted(r.data["size"] for r in trace.filter("nic.tx"))
    assert sizes[-1] >= 1 << 20  # the data pw is alone and full-size


# ---------------------------------------------------------------------------
# multirail split
# ---------------------------------------------------------------------------

def test_small_messages_ride_fastest_rail(multirail_world):
    trace = Trace(categories={"nic.tx"})
    multirail_world.sim.trace = trace
    run_transfer(multirail_world, 64)
    rails = {r.data["rail"] for r in trace.filter("nic.tx")}
    assert rails == {"ib"}


def test_large_messages_use_both_rails(multirail_world):
    trace = Trace(categories={"nic.tx"})
    multirail_world.sim.trace = trace
    run_transfer(multirail_world, 4 << 20, data="blob")
    rails = {r.data["rail"] for r in trace.filter("nic.tx")}
    assert rails == {"ib", "mx"}


def test_multirail_preserves_payload(multirail_world):
    _, rreq, _ = run_transfer(multirail_world, 4 << 20, data="the-blob")
    assert rreq.data == "the-blob"


def test_multirail_bandwidth_approaches_sum_of_rails(multirail_world):
    size = 32 << 20
    _, _, elapsed = run_transfer(multirail_world, size)
    bw = size / elapsed
    assert bw > 0.85 * (1.5e9 + 1.2e9)


def test_below_split_threshold_stays_on_one_rail():
    world = NmadWorld(rails=("ib", "mx"), strategy="split_balance",
                      costs=NmadCosts(split_threshold=1 << 20))
    trace = Trace(categories={"nic.tx"})
    world.sim.trace = trace
    run_transfer(world, 256 << 10)  # rendezvous but below split threshold
    rails = {r.data["rail"] for r in trace.filter("nic.tx")}
    assert rails == {"ib"}
