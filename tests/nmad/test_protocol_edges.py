"""Protocol-invariant and error-path tests for the NewMadeleine core."""

import pytest

from repro.hardware import build_cluster, presets
from repro.nmad import NmadCore, NmadCosts
from repro.nmad.core import ProtocolError
from repro.nmad.drivers import NmadDriver, make_ib_driver
from repro.nmad.packet import (
    CONTROL_SIZE,
    HEADER_SIZE,
    CtsEntry,
    DataEntry,
    EagerEntry,
    PacketWrapper,
    RtsEntry,
    entry_wire_size,
)
from repro.nmad.request import NmadRequest
from repro.simulator import Simulator

from tests.nmad.conftest import NmadWorld


# ---------------------------------------------------------------------------
# packet wrappers
# ---------------------------------------------------------------------------

def test_entry_wire_sizes():
    assert entry_wire_size(EagerEntry(0, 1, "t", 0, 100)) == HEADER_SIZE + 100
    assert entry_wire_size(DataEntry(0, 1, 5, 1000)) == HEADER_SIZE + 1000
    assert entry_wire_size(RtsEntry(0, 1, "t", 0, 1 << 20)) == CONTROL_SIZE
    assert entry_wire_size(CtsEntry(0, 1, 5)) == CONTROL_SIZE


def test_pw_wire_size_sums_entries():
    pw = PacketWrapper(dst_node=1, src_node=0)
    pw.append(EagerEntry(0, 1, "a", 0, 10))
    pw.append(EagerEntry(0, 1, "b", 0, 20))
    pw.append(CtsEntry(0, 1, 1))
    assert pw.wire_size == (HEADER_SIZE + 10) + (HEADER_SIZE + 20) + CONTROL_SIZE
    assert pw.dst_ranks == [1, 1, 1]


def test_pw_ids_unique():
    a = PacketWrapper(dst_node=0, src_node=0)
    b = PacketWrapper(dst_node=0, src_node=0)
    assert a.pw_id != b.pw_id


# ---------------------------------------------------------------------------
# requests
# ---------------------------------------------------------------------------

def test_request_kind_validated():
    sim = Simulator()
    with pytest.raises(ValueError):
        NmadRequest(sim, "neither", 0, "t", 0)


def test_request_double_finish_rejected():
    sim = Simulator()
    req = NmadRequest(sim, "send", 1, "t", 8)
    req._finish(sim)
    with pytest.raises(RuntimeError, match="twice"):
        req._finish(sim)


def test_request_repr_mentions_state():
    sim = Simulator()
    req = NmadRequest(sim, "recv", 2, "tag", 64)
    assert "pending" in repr(req)
    req._finish(sim)
    assert "done" in repr(req)


# ---------------------------------------------------------------------------
# driver invariants
# ---------------------------------------------------------------------------

def build_driver(window=1):
    sim = Simulator()
    cluster = build_cluster(sim, 2, presets.XEON_NODE, [presets.IB_CONNECTX])
    return sim, NmadDriver(cluster.node(0).nics["ib"], window=window)


def test_driver_window_enforced():
    sim, driver = build_driver(window=1)
    pw = PacketWrapper(dst_node=1, src_node=0)
    pw.append(EagerEntry(0, 1, "t", 0, 10_000))
    driver.post(pw)
    assert not driver.window_free()
    pw2 = PacketWrapper(dst_node=1, src_node=0)
    pw2.append(EagerEntry(0, 1, "t", 1, 8))
    with pytest.raises(RuntimeError, match="window full"):
        driver.post(pw2)


def test_driver_window_frees_after_injection():
    sim, driver = build_driver(window=1)
    pw = PacketWrapper(dst_node=1, src_node=0)
    pw.append(EagerEntry(0, 1, "t", 0, 10))
    driver.post(pw)
    sim.run()
    assert driver.window_free()
    assert driver.pws_posted == 1


def test_driver_rejects_zero_window():
    sim = Simulator()
    cluster = build_cluster(sim, 1, presets.XEON_NODE, [presets.IB_CONNECTX])
    with pytest.raises(ValueError):
        NmadDriver(cluster.node(0).nics["ib"], window=0)


# ---------------------------------------------------------------------------
# core protocol errors
# ---------------------------------------------------------------------------

def drive(sim, gen):
    task = sim.spawn(gen)
    sim.run()
    return task


def test_cts_for_unknown_rendezvous_rejected(world):
    core = world.cores[0]

    def feed():
        yield from core.handle_entry(CtsEntry(1, 0, rdv_id=424242), "ib")

    world.sim.spawn(feed())
    with pytest.raises(ProtocolError, match="unknown rendezvous"):
        world.sim.run()


def test_data_for_unknown_rendezvous_rejected(world):
    core = world.cores[0]

    def feed():
        yield from core.handle_entry(DataEntry(1, 0, rdv_id=99, size=10), "ib")

    world.sim.spawn(feed())
    with pytest.raises(ProtocolError, match="unknown rendezvous"):
        world.sim.run()


def test_out_of_order_seq_detected(world):
    core = world.cores[1]

    def feed():
        # seq 1 arrives before seq 0 for the same (src, tag) flow
        req = yield from core.irecv(0, "seq-tag")
        yield from core.handle_entry(
            EagerEntry(0, 1, "seq-tag", seq=1, size=4), "ib")

    world.sim.spawn(feed())
    with pytest.raises(ProtocolError, match="out-of-order"):
        world.sim.run()


def test_ordering_check_can_be_disabled():
    world = NmadWorld()
    core = world.cores[1]
    core.check_ordering = False

    def feed():
        yield from core.irecv(0, "t")
        yield from core.handle_entry(EagerEntry(0, 1, "t", seq=5, size=4), "ib")

    drive(world.sim, feed())  # no error


def test_unknown_rail_lookup_rejected(world):
    with pytest.raises(KeyError):
        world.cores[0].driver_for_rail("quadrics")


def test_rdv_overrun_detected():
    """More data bytes than announced must raise, not corrupt state."""
    # isolated core: no peer consumes the CTS our crafted RTS triggers
    sim = Simulator()
    cluster = build_cluster(sim, 2, presets.XEON_NODE, [presets.IB_CONNECTX])
    node = cluster.node(1)
    core = NmadCore(sim, 1, 1, node.mem, node.make_registrar(False))
    core.add_driver(make_ib_driver(node.nics["ib"]))
    from repro.nmad.strategies import make_strategy
    core.set_strategy(make_strategy("default", core))

    def feed():
        yield from core.irecv(0, "big")
        # hand-craft the rendezvous: RTS announcing 100 bytes
        yield from core.handle_entry(
            RtsEntry(0, 1, "big", seq=0, size=100, rdv_id=7), "ib")

    drive(sim, feed())

    def overrun():
        yield from core.handle_entry(DataEntry(0, 1, rdv_id=7, size=150), "ib")

    sim.spawn(overrun())
    with pytest.raises(ProtocolError, match="overran"):
        sim.run()
