"""Shared fixtures: a two-node NewMadeleine world over one or two rails."""

import pytest

from repro.hardware import MemoryRegistrar, build_cluster, presets
from repro.nmad import NmadCore, NmadCosts, SendRecvInterface
from repro.nmad.drivers import make_ib_driver, make_mx_driver
from repro.nmad.strategies import make_strategy
from repro.simulator import Simulator


class NmadWorld:
    """Two standalone NewMadeleine processes (one per node)."""

    def __init__(self, rails=("ib",), strategy="aggreg", costs=None, cache=False):
        self.sim = Simulator()
        rail_params = {
            "ib": presets.IB_CONNECTX,
            "mx": presets.MX_MYRI10G,
        }
        self.cluster = build_cluster(
            self.sim, 2, presets.XEON_NODE, [rail_params[r] for r in rails]
        )
        self.cores = []
        self.ifaces = []
        for rank in (0, 1):
            node = self.cluster.node(rank)
            core = NmadCore(
                self.sim, rank, rank,
                mem=node.mem,
                registrar=node.make_registrar(cache=cache),
                costs=costs or NmadCosts(),
            )
            for rail in rails:
                maker = make_ib_driver if rail == "ib" else make_mx_driver
                core.add_driver(maker(node.nics[rail]))
            core.set_strategy(make_strategy(strategy, core))
            self.cores.append(core)
            self.ifaces.append(SendRecvInterface(self.sim, core))


@pytest.fixture
def world():
    return NmadWorld()


@pytest.fixture
def multirail_world():
    return NmadWorld(rails=("ib", "mx"), strategy="split_balance")
