"""Rendezvous-protocol behaviour: handshake, zero copy, registration."""

import pytest

from repro.nmad import NmadCosts
from repro.simulator import Trace

from tests.nmad.conftest import NmadWorld
from tests.nmad.test_core_eager import run_transfer


def test_large_message_uses_rendezvous(world):
    size = 1 << 20
    sreq, rreq, _ = run_transfer(world, size, data="bigpayload")
    assert sreq.complete and rreq.complete
    assert rreq.data == "bigpayload"


def test_rendezvous_wire_traffic_has_rts_cts_data():
    trace = Trace(categories={"nic.tx"})
    world = NmadWorld()
    world.sim.trace = trace
    run_transfer(world, 1 << 20)
    kinds = [r.data["kind"] for r in trace.filter("nic.tx")]
    # all nmad frames; count them: rts pw, cts pw, data pw
    assert len(kinds) == 3


def test_threshold_boundary_eager_vs_rdv():
    costs = NmadCosts(eager_threshold=1024)
    trace = Trace(categories={"nic.tx"})
    w1 = NmadWorld(costs=costs)
    w1.sim.trace = trace
    run_transfer(w1, 1024)       # == threshold -> eager, single frame
    assert trace.count("nic.tx") == 1

    trace2 = Trace(categories={"nic.tx"})
    w2 = NmadWorld(costs=costs)
    w2.sim.trace = trace2
    run_transfer(w2, 1025)       # > threshold -> rendezvous, 3 frames
    assert trace2.count("nic.tx") == 3


def test_rendezvous_bandwidth_approaches_line_rate(world):
    size = 16 << 20
    _, _, elapsed = run_transfer(world, size)
    bw = size / elapsed
    line = 1.50e9
    assert bw > 0.85 * line
    assert bw < line


def test_registration_charged_on_both_sides(world):
    run_transfer(world, 1 << 20)
    # sender registers tx buffer, receiver registers rx buffer
    assert world.cores[0].registrar.full_registrations == 1
    assert world.cores[1].registrar.full_registrations == 1


def test_no_registration_for_eager(world):
    run_transfer(world, 1024)
    assert world.cores[0].registrar.full_registrations == 0
    assert world.cores[1].registrar.full_registrations == 0


def test_late_receiver_delays_rendezvous(world):
    """RTS waits unexpected until the receiver posts; data flows after."""
    sim = world.sim
    tx, rx = world.ifaces
    size = 1 << 20

    def sender():
        req = yield from tx.nm_sr_isend(1, "big", None, size)
        yield from tx.nm_sr_rwait(req)
        return sim.now

    def receiver():
        yield sim.timeout(500e-6)
        req = yield from rx.nm_sr_irecv(0, "big", size)
        yield from rx.nm_sr_rwait(req)
        return sim.now

    s = sim.spawn(sender())
    r = sim.spawn(receiver())
    sim.run()
    # data could only start after the recv was posted at 500us
    assert s.value > 500e-6
    assert r.value > 500e-6


def test_multiple_rendezvous_same_tag_in_order(world):
    sim = world.sim
    tx, rx = world.ifaces
    size = 256 << 10

    def sender():
        reqs = []
        for i in range(3):
            req = yield from tx.nm_sr_isend(1, "r", f"payload{i}", size)
            reqs.append(req)
        for req in reqs:
            yield from tx.nm_sr_rwait(req)

    def receiver():
        out = []
        for _ in range(3):
            req = yield from rx.nm_sr_irecv(0, "r", size)
            yield from rx.nm_sr_rwait(req)
            out.append(req.data)
        return out

    sim.spawn(sender())
    r = sim.spawn(receiver())
    sim.run()
    assert r.value == ["payload0", "payload1", "payload2"]


def test_eager_faster_than_rendezvous_below_crossover(world):
    # 4 KiB forced through both protocols: at small sizes the rendezvous
    # handshake + registration outweighs the two eager copies.
    costs_eager = NmadCosts(eager_threshold=8 * 1024)
    costs_rdv = NmadCosts(eager_threshold=1024)
    w_eager = NmadWorld(costs=costs_eager)
    w_rdv = NmadWorld(costs=costs_rdv)
    _, _, t_eager = run_transfer(w_eager, 4 * 1024)
    _, _, t_rdv = run_transfer(w_rdv, 4 * 1024)
    assert t_rdv > t_eager


def test_rendezvous_faster_than_eager_above_crossover(world):
    # 256 KiB: zero copy wins over double buffering.
    costs_eager = NmadCosts(eager_threshold=1024 * 1024, max_pw_size=1024 * 1024)
    costs_rdv = NmadCosts(eager_threshold=1024)
    w_eager = NmadWorld(costs=costs_eager)
    w_rdv = NmadWorld(costs=costs_rdv)
    _, _, t_eager = run_transfer(w_eager, 256 * 1024)
    _, _, t_rdv = run_transfer(w_rdv, 256 * 1024)
    assert t_rdv < t_eager
