"""The contention-aware multirail split (strategy ``split_contention``)."""

from __future__ import annotations

import pytest

from repro import config
from repro.hardware import presets as hw
from repro.hardware.netgraph import BackgroundTraffic, ring
from repro.nmad.strategies import SplitContentionStrategy, make_strategy
from repro.runtime.builder import MPIRuntime
from repro.simulator import Trace

SIZE = 1 << 20


def _stream(n_msgs):
    def program(comm):
        for i in range(n_msgs):
            if comm.rank == 0:
                yield from comm.send(1, tag=i, size=SIZE)
                yield from comm.recv(src=1, tag=1000 + i)
            else:
                yield from comm.recv(src=0, tag=i)
                yield from comm.send(0, tag=1000 + i, size=16)
    return program


def _mx_shares(strategy, *, topology=None, bg=False, n_msgs=6):
    """Run the stream; return each split's mx fraction, in order."""
    trace = Trace()
    if topology is None:
        cluster = config.xeon_pair()
    else:
        cluster = config.ClusterSpec(
            n_nodes=4, rails=(hw.IB_CONNECTX, hw.MX_MYRI10G),
            topology=topology, topo_rails=("mx",))
    runtime = MPIRuntime(2, config.mpich2_nmad(rails=("ib", "mx"),
                                               strategy=strategy),
                         cluster=cluster, trace=trace)
    if bg:
        BackgroundTraffic(runtime.cluster.fabrics["mx"], src=3, dst=1,
                          size=1 << 20, period=2e-5, count=400).install()
    runtime.run(_stream(n_msgs))
    splits = [rec.data["shares"] for rec in trace.records
              if rec.category == "strategy.split"]
    assert splits, "large sends must stripe"
    return [dict(s).get("mx", 0) / sum(c for _, c in s) for s in splits]


def test_registered():
    strategy = make_strategy("split_contention", None)
    assert isinstance(strategy, SplitContentionStrategy)
    assert strategy.name == "split_contention"


def test_matches_split_balance_on_flat_rails():
    """With zero observed delay the contended split is the static one."""
    assert _mx_shares("split_contention") == _mx_shares("split_balance")


def test_share_decays_under_induced_contention():
    quiet = _mx_shares("split_contention", topology=ring(4))
    congested = _mx_shares("split_contention", topology=ring(4), bg=True)
    assert quiet[-1] == pytest.approx(quiet[0])
    assert congested[0] == pytest.approx(quiet[0])   # learns from traffic
    assert congested[-1] < congested[0]
    assert congested[-1] < quiet[-1]


def test_static_split_ignores_contention():
    """The baseline strategy keeps overfeeding the congested rail."""
    shares = _mx_shares("split_balance", topology=ring(4), bg=True)
    assert shares[-1] == pytest.approx(shares[0])


def test_sampler_split_contended_shifts_with_delay():
    from repro.nmad.strategies import NetworkSampler

    class FakeNIC:
        def __init__(self, params):
            self.params = params

    class FakeDriver:
        def __init__(self, params):
            self.nic = FakeNIC(params)

    sampler = NetworkSampler()
    drivers = [FakeDriver(hw.IB_CONNECTX), FakeDriver(hw.MX_MYRI10G)]
    size = 1 << 20
    static = dict((d, c) for d, c in sampler.split(drivers, size))
    same = dict((d, c) for d, c in
                sampler.split_contended(drivers, size, lambda d: 0.0))
    assert same == static
    # 1 ms of queueing on the second rail shrinks its share
    slow = dict(sampler.split_contended(
        drivers, size, lambda d: 1e-3 if d is drivers[1] else 0.0))
    assert slow.get(drivers[1], 0) < static[drivers[1]]
    assert sum(slow.values()) == size
