"""Effect inference and interprocedural propagation."""

from repro.analysis.static.callgraph import build_package
from repro.analysis.static.effects import (BLOCKS, HOST_CLOCK,
                                           MUTATES_SHARED,
                                           RACE_INSTRUMENTED, RAW_CLOCK,
                                           RAW_RNG, RNG_STREAM, TRACE_EMIT,
                                           YIELDS, EffectAnalysis)


def analyze(make_pkg, files):
    graph = build_package(make_pkg(files))
    return graph, EffectAnalysis(graph)


# ---------------------------------------------------------------------------
# local inference
# ---------------------------------------------------------------------------

def test_raw_clock_detected(make_pkg):
    _, fx = analyze(make_pkg, {"a.py": """
        import time

        def stamp():
            return time.time()
        """})
    assert RAW_CLOCK in fx.functions["pkg.a.stamp"].local


def test_raw_clock_detected_through_alias(make_pkg):
    _, fx = analyze(make_pkg, {"a.py": """
        from time import time as now

        def stamp():
            return now()
        """})
    assert RAW_CLOCK in fx.functions["pkg.a.stamp"].local


def test_raw_rng_detected(make_pkg):
    _, fx = analyze(make_pkg, {"a.py": """
        import random

        def draw():
            return random.random()
        """})
    assert RAW_RNG in fx.functions["pkg.a.draw"].local


def test_generator_yields(make_pkg):
    _, fx = analyze(make_pkg, {"a.py": """
        def proc(sim):
            yield sim.timeout(1.0)
        """})
    assert fx.functions["pkg.a.proc"].is_generator


def test_nested_def_effects_stay_separate(make_pkg):
    _, fx = analyze(make_pkg, {"a.py": """
        def outer():
            def inner():
                yield 1
            return inner
        """})
    assert YIELDS not in fx.functions["pkg.a.outer"].local
    assert YIELDS in fx.functions["pkg.a.outer.inner"].local


def test_time_sleep_blocks(make_pkg):
    _, fx = analyze(make_pkg, {"a.py": """
        import time

        def nap():
            time.sleep(0.1)
        """})
    assert BLOCKS in fx.functions["pkg.a.nap"].local


def test_trace_emission_collects_categories(make_pkg):
    _, fx = analyze(make_pkg, {"a.py": """
        def emit(sim):
            sim.record("nic.tx", size=4)
        """})
    emit = fx.functions["pkg.a.emit"]
    assert TRACE_EMIT in emit.local
    assert [c for c, _ in emit.categories] == ["nic.tx"]


def test_shared_mutation_and_instrumentation(make_pkg):
    _, fx = analyze(make_pkg, {"a.py": """
        class C:
            def __init__(self):
                self.items = []

            def push(self, x):
                self.items.append(x)

            def guarded(self, x):
                self.sim.race_write("c.items")
                self.items.append(x)
        """})
    push = fx.functions["pkg.a.C.push"]
    assert MUTATES_SHARED in push.local and not push.instrumented
    guarded = fx.functions["pkg.a.C.guarded"]
    assert MUTATES_SHARED in guarded.local
    assert RACE_INSTRUMENTED in guarded.local
    # __init__ mutations are constructor-owned, never shared
    assert MUTATES_SHARED not in fx.functions["pkg.a.C.__init__"].local


# ---------------------------------------------------------------------------
# propagation
# ---------------------------------------------------------------------------

def test_effects_propagate_to_callers(make_pkg):
    _, fx = analyze(make_pkg, {"a.py": """
        import time

        def leaf():
            time.sleep(1)

        def mid():
            leaf()

        def top():
            mid()
        """})
    assert BLOCKS in fx.functions["pkg.a.top"].out
    chain = fx.chain("pkg.a.top", BLOCKS)
    assert chain[:3] == ["pkg.a.top", "pkg.a.mid", "pkg.a.leaf"]


def test_calling_a_generator_propagates_nothing(make_pkg):
    _, fx = analyze(make_pkg, {"a.py": """
        import time

        def proc():
            time.sleep(1)
            yield 1

        def spawner(sim):
            sim.spawn(proc())
        """})
    out = fx.functions["pkg.a.spawner"].out
    assert BLOCKS not in out and YIELDS not in out


def test_funnel_absorbs_raw_clock(make_pkg):
    _, fx = analyze(make_pkg, {
        "simulator/__init__.py": "",
        "simulator/hostclock.py": """
        import time

        def host_clock():
            return time.time()
        """,
        "a.py": """
        from pkg.simulator.hostclock import host_clock

        def telemetry():
            return host_clock()
        """})
    telemetry = fx.functions["pkg.a.telemetry"]
    assert HOST_CLOCK in telemetry.out
    assert RAW_CLOCK not in telemetry.out
    # the funnel itself still carries the raw effect locally
    assert RAW_CLOCK in fx.functions[
        "pkg.simulator.hostclock.host_clock"].local


def test_funnel_absorbs_raw_rng(make_pkg):
    _, fx = analyze(make_pkg, {
        "simulator/__init__.py": "",
        "simulator/rng.py": """
        import numpy as np

        def rng_stream(seed, *key):
            return np.random.default_rng(seed)
        """,
        "a.py": """
        from pkg.simulator.rng import rng_stream

        def draw(seed):
            return rng_stream(seed, "a")
        """})
    draw = fx.functions["pkg.a.draw"]
    assert RNG_STREAM in draw.out
    assert RAW_RNG not in draw.out


def test_simulator_run_is_blocking(make_pkg):
    _, fx = analyze(make_pkg, {
        "simulator/__init__.py": "",
        "simulator/engine.py": """
        class Simulator:
            def run(self, until=None):
                pass

            def step(self):
                pass
        """,
        "a.py": """
        def drive(sim):
            sim.run()
        """})
    assert BLOCKS in fx.functions["pkg.a.drive"].out


def test_mutation_effects_do_not_travel(make_pkg):
    _, fx = analyze(make_pkg, {"a.py": """
        class C:
            def push(self, x):
                self.items.append(x)

        def caller(c):
            c.push(1)
        """})
    assert MUTATES_SHARED not in fx.functions["pkg.a.caller"].out
