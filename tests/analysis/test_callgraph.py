"""Call-graph construction on small fixture packages."""

from repro.analysis.static.callgraph import build_package, iter_functions


def edges(graph, caller, kind=None):
    out = graph.calls_from(caller)
    if kind is not None:
        out = [e for e in out if e.kind == kind]
    return {e.callee for e in out}


# ---------------------------------------------------------------------------
# basics
# ---------------------------------------------------------------------------

def test_direct_call_edge(make_pkg):
    root = make_pkg({"a.py": """
        def helper():
            return 1

        def caller():
            return helper()
        """})
    graph = build_package(root)
    assert "pkg.a.helper" in edges(graph, "pkg.a.caller", kind="call")


def test_module_level_code_is_a_pseudo_function(make_pkg):
    root = make_pkg({"a.py": """
        def init():
            pass

        init()
        """})
    graph = build_package(root)
    assert "pkg.a.init" in edges(graph, "pkg.a.<module>", kind="call")


def test_all_exports_are_extracted(make_pkg):
    root = make_pkg({"a.py": """
        __all__ = ["fn", "Klass"]

        def fn():
            pass

        class Klass:
            pass
        """})
    graph = build_package(root)
    assert graph.modules["pkg.a"].exports == ("fn", "Klass")


def test_iter_functions_skips_module_entries(make_pkg):
    root = make_pkg({"a.py": "def fn():\n    pass\n"})
    graph = build_package(root)
    names = [f.qname for f in iter_functions(graph)]
    assert names == ["pkg.a.fn"]


# ---------------------------------------------------------------------------
# imports and re-exports
# ---------------------------------------------------------------------------

def test_cross_module_import_resolves(make_pkg):
    root = make_pkg({
        "a.py": "def fn():\n    pass\n",
        "b.py": """
        from pkg.a import fn

        def caller():
            fn()
        """})
    graph = build_package(root)
    assert "pkg.a.fn" in edges(graph, "pkg.b.caller", kind="call")


def test_reexport_chain_resolves(make_pkg):
    root = make_pkg({
        "__init__.py": "from pkg.a import fn\n",
        "a.py": "def fn():\n    pass\n",
        "b.py": """
        from pkg import fn

        def caller():
            fn()
        """})
    graph = build_package(root)
    assert "pkg.a.fn" in edges(graph, "pkg.b.caller", kind="call")


def test_relative_import_resolves(make_pkg):
    root = make_pkg({
        "sub/__init__.py": "",
        "sub/a.py": "def fn():\n    pass\n",
        "sub/b.py": """
        from .a import fn

        def caller():
            fn()
        """})
    graph = build_package(root)
    assert "pkg.sub.a.fn" in edges(graph, "pkg.sub.b.caller", kind="call")


def test_aliased_import_resolves(make_pkg):
    root = make_pkg({
        "a.py": "def fn():\n    pass\n",
        "b.py": """
        from pkg.a import fn as other

        def caller():
            other()
        """})
    graph = build_package(root)
    assert "pkg.a.fn" in edges(graph, "pkg.b.caller", kind="call")


# ---------------------------------------------------------------------------
# methods and dispatch
# ---------------------------------------------------------------------------

def test_self_method_call_resolves(make_pkg):
    root = make_pkg({"a.py": """
        class C:
            def target(self):
                pass

            def caller(self):
                self.target()
        """})
    graph = build_package(root)
    assert "pkg.a.C.target" in edges(graph, "pkg.a.C.caller", kind="call")


def test_self_dispatch_includes_subclass_overrides(make_pkg):
    root = make_pkg({"a.py": """
        class Base:
            def hook(self):
                pass

            def caller(self):
                self.hook()

        class Child(Base):
            def hook(self):
                pass
        """})
    graph = build_package(root)
    callees = edges(graph, "pkg.a.Base.caller", kind="call")
    assert {"pkg.a.Base.hook", "pkg.a.Child.hook"} <= callees


def test_inherited_method_resolves_through_base(make_pkg):
    root = make_pkg({"a.py": """
        class Base:
            def helper(self):
                pass

        class Child(Base):
            def caller(self):
                self.helper()
        """})
    graph = build_package(root)
    assert "pkg.a.Base.helper" in edges(graph, "pkg.a.Child.caller",
                                        kind="call")


def test_unknown_receiver_falls_back_to_by_name(make_pkg):
    root = make_pkg({"a.py": """
        class C:
            def poke(self):
                pass

        def caller(obj):
            obj.poke()
        """})
    graph = build_package(root)
    assert "pkg.a.C.poke" in edges(graph, "pkg.a.caller", kind="call")


def test_instantiation_reaches_init(make_pkg):
    root = make_pkg({"a.py": """
        class C:
            def __init__(self):
                pass

        def caller():
            C()
        """})
    graph = build_package(root)
    assert "pkg.a.C.__init__" in edges(graph, "pkg.a.caller", kind="call")


# ---------------------------------------------------------------------------
# refs: decorators, callbacks, lambdas
# ---------------------------------------------------------------------------

def test_decorator_produces_ref_edge(make_pkg):
    root = make_pkg({"a.py": """
        def deco(fn):
            return fn

        @deco
        def decorated():
            pass
        """})
    graph = build_package(root)
    assert "pkg.a.deco" in edges(graph, "pkg.a.<module>")


def test_callback_registration_is_captured(make_pkg):
    root = make_pkg({"a.py": """
        class Listener:
            def on_record(self, rec):
                pass

            def attach(self, trace):
                trace.subscribe(self.on_record)
        """})
    graph = build_package(root)
    regs = [(r.via, r.callback) for r in graph.registrations]
    assert ("subscribe", "pkg.a.Listener.on_record") in regs


def test_function_passed_as_argument_is_a_ref(make_pkg):
    root = make_pkg({"a.py": """
        def callback():
            pass

        def caller(runner):
            runner.go(callback)
        """})
    graph = build_package(root)
    ref_edges = edges(graph, "pkg.a.caller", kind="ref")
    assert "pkg.a.callback" in ref_edges


def test_named_lambda_is_a_function(make_pkg):
    root = make_pkg({"a.py": "double = lambda x: x * 2\n"})
    graph = build_package(root)
    assert "pkg.a.double" in graph.functions
    assert graph.functions["pkg.a.double"].is_lambda


def test_inline_lambda_body_belongs_to_the_lambda(make_pkg):
    root = make_pkg({"a.py": """
        def target():
            pass

        def caller(runner):
            runner.later(lambda: target())
        """})
    graph = build_package(root)
    # the call edge to target hangs off the lambda, not off caller
    assert "pkg.a.target" not in edges(graph, "pkg.a.caller", kind="call")
    lambdas = [q for q in graph.functions if "<lambda@" in q]
    assert any("pkg.a.target" in edges(graph, q, kind="call")
               for q in lambdas)


# ---------------------------------------------------------------------------
# reachability
# ---------------------------------------------------------------------------

def test_reachable_walks_transitively(make_pkg):
    root = make_pkg({"a.py": """
        def c():
            pass

        def b():
            c()

        def a():
            b()

        def orphan():
            pass
        """})
    graph = build_package(root)
    live = graph.reachable(["pkg.a.a"])
    assert {"pkg.a.a", "pkg.a.b", "pkg.a.c"} <= live
    assert "pkg.a.orphan" not in live
