"""Shared fixture-package builder for the static-analyzer tests."""

import textwrap

import pytest


@pytest.fixture
def make_pkg(tmp_path):
    """Materialize ``{relpath: source}`` as a package dir named ``pkg``.

    Returns the package root path (suitable for ``build_package``).
    Sources are dedented; intermediate ``__init__.py`` files must be
    listed explicitly (an empty string is fine).
    """

    def _make(files, name="pkg"):
        root = tmp_path / name
        for rel, source in files.items():
            path = root / rel
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(textwrap.dedent(source))
        if not (root / "__init__.py").exists():
            (root / "__init__.py").write_text("")
        return str(root)

    return _make
