"""Shared reporter machinery: pragmas, baselines, output formats."""

import json

from repro.analysis.reporting import (Violation, apply_baseline,
                                      baseline_counts, load_baseline,
                                      normalize_path, parse_pragmas, render,
                                      save_baseline, suppressed_by_pragma,
                                      to_json, to_sarif)


def v(code="RPC003", line=3, snippet="x = random.random()"):
    return Violation(path="src/repro/a.py", line=line, col=4, code=code,
                     message="a finding", snippet=snippet)


# ---------------------------------------------------------------------------
# identity
# ---------------------------------------------------------------------------

def test_normalize_path_roots_at_repro():
    assert normalize_path("/home/x/src/repro/nmad/core.py") == \
        "repro/nmad/core.py"
    assert normalize_path("elsewhere.py") == "elsewhere.py"


def test_fingerprint_ignores_line_moves():
    assert v(line=3).fingerprint() == v(line=99).fingerprint()
    assert v().fingerprint() != v(snippet="y = 1").fingerprint()
    assert v().fingerprint() != v(code="RPC002").fingerprint()


# ---------------------------------------------------------------------------
# pragmas
# ---------------------------------------------------------------------------

def test_pragma_same_line():
    pragmas = parse_pragmas(["x = 1  # repro-check: allow[RPC003]"],
                            tool="repro-check")
    assert suppressed_by_pragma(pragmas, 1, "RPC003")
    assert not suppressed_by_pragma(pragmas, 1, "RPC002")


def test_pragma_bare_allow_silences_all_codes():
    pragmas = parse_pragmas(["x = 1  # repro-lint: allow"])
    assert suppressed_by_pragma(pragmas, 1, "RPR001")
    assert suppressed_by_pragma(pragmas, 1, "RPR999")


def test_comment_only_pragma_covers_next_line():
    pragmas = parse_pragmas([
        "# repro-check: allow[RPC004] build-time wiring",
        "self.stacks.append(stack)",
    ], tool="repro-check")
    assert suppressed_by_pragma(pragmas, 2, "RPC004")


def test_trailing_pragma_does_not_leak_to_next_line():
    pragmas = parse_pragmas([
        "x = 1  # repro-check: allow[RPC003]",
        "y = 2",
    ], tool="repro-check")
    assert not suppressed_by_pragma(pragmas, 2, "RPC003")


def test_tool_spelling_is_disjoint():
    pragmas = parse_pragmas(["x = 1  # repro-lint: allow[RPR001]"],
                            tool="repro-check")
    assert not suppressed_by_pragma(pragmas, 1, "RPR001")


# ---------------------------------------------------------------------------
# baseline round-trip
# ---------------------------------------------------------------------------

def test_baseline_round_trip(tmp_path):
    path = str(tmp_path / "baseline.json")
    violations = [v(), v(snippet="other = time.time()", code="RPC002")]
    save_baseline(path, violations)
    loaded = load_baseline(path)
    assert loaded == baseline_counts(violations)
    fresh, suppressed = apply_baseline(violations, loaded)
    assert fresh == [] and len(suppressed) == 2


def test_baseline_counts_duplicates():
    fresh, suppressed = apply_baseline([v(), v()], {v().fingerprint(): 1})
    assert len(fresh) == 1 and len(suppressed) == 1


def test_missing_baseline_is_empty(tmp_path):
    assert load_baseline(str(tmp_path / "nope.json")) == {}


# ---------------------------------------------------------------------------
# output formats
# ---------------------------------------------------------------------------

def test_json_format_carries_fingerprints():
    doc = to_json([v()], tool="repro-check")
    [finding] = doc["findings"]
    assert finding["fingerprint"] == v().fingerprint()
    assert finding["path"] == "repro/a.py"


def test_sarif_is_valid_2_1_0():
    doc = to_sarif([v()], tool="repro-check",
                   rules=[("RPC003", "stray rng")])
    assert doc["version"] == "2.1.0"
    [run] = doc["runs"]
    assert run["tool"]["driver"]["rules"] == [
        {"id": "RPC003", "shortDescription": {"text": "stray rng"}}]
    [result] = run["results"]
    assert result["ruleId"] == "RPC003"
    assert result["partialFingerprints"]["reproAnalysis/v1"] == \
        v().fingerprint()
    region = result["locations"][0]["physicalLocation"]["region"]
    assert region == {"startLine": 3, "startColumn": 5}


def test_sarif_lists_rules_even_when_clean():
    doc = to_sarif([], tool="repro-lint", rules=[("RPR001", "wall clock")])
    assert doc["runs"][0]["results"] == []
    assert doc["runs"][0]["tool"]["driver"]["rules"]


def test_render_dispatches_and_rejects_unknown():
    assert "RPC003" in render([v()], "text", "t", [])
    assert json.loads(render([v()], "json", "t", []))["tool"] == "t"
    assert json.loads(render([v()], "sarif", "t", []))["version"] == "2.1.0"
    try:
        render([], "yaml", "t", [])
    except ValueError as exc:
        assert "yaml" in str(exc)
    else:                                        # pragma: no cover
        raise AssertionError("expected ValueError")
