"""Good/bad fixtures for every determinism-lint rule."""

import textwrap

from repro.analysis.lint import lint_source


def check(source, path="repro/somefile.py"):
    return lint_source(textwrap.dedent(source), path=path)


def codes(source, path="repro/somefile.py"):
    return [v.code for v in check(source, path)]


# ----------------------------------------------------------------------
# RPR001 wall-clock
# ----------------------------------------------------------------------
def test_rpr001_flags_time_time():
    vs = check("""
        import time
        started = time.time()
    """)
    assert [v.code for v in vs] == ["RPR001"]
    assert "host_clock" in vs[0].message


def test_rpr001_flags_perf_counter_and_datetime_now():
    assert codes("""
        import time
        t = time.perf_counter()
    """) == ["RPR001"]
    assert codes("""
        import datetime
        stamp = datetime.datetime.now()
    """) == ["RPR001"]


def test_rpr001_flags_from_time_import():
    assert codes("from time import perf_counter\n") == ["RPR001"]


def test_rpr001_clean_on_sim_clock_and_sleep():
    assert codes("""
        import time
        def run(sim):
            t = sim.now
            time.sleep(0)  # sleeping is not *reading* the clock
    """) == []


def test_rpr001_allowlisted_in_simulator_hostclock():
    source = "import time\n\ndef host_clock():\n    return time.time()\n"
    assert lint_source(source, path="src/repro/simulator/hostclock.py") == []
    assert [v.code for v in lint_source(source, path="repro/other.py")] \
        == ["RPR001"]
    # the old audited home is no longer exempt: everything funnels
    # through repro.simulator.hostclock now
    assert [v.code
            for v in lint_source(source,
                                 path="src/repro/experiments/common.py")] \
        == ["RPR001"]


# ----------------------------------------------------------------------
# RPR002 stray RNG
# ----------------------------------------------------------------------
def test_rpr002_flags_random_module():
    assert codes("import random\n") == ["RPR002"]
    assert codes("from random import randint\n") == ["RPR002"]


def test_rpr002_flags_numpy_random():
    assert codes("""
        import numpy as np
        rng = np.random.default_rng()
    """) == ["RPR002"]
    assert codes("from numpy import random\n") == ["RPR002"]


def test_rpr002_clean_on_named_streams():
    assert codes("""
        from repro.simulator.rng import rng_stream

        def jitter(seed):
            stream = rng_stream("marcel.jitter", seed)
            return stream.random()
    """) == []


def test_rpr002_clean_on_generator_attribute_named_random():
    # self._jitter_rng.random() is a draw from an already-seeded stream
    assert codes("""
        def draw(self):
            return self._jitter_rng.random()
    """) == []


# ----------------------------------------------------------------------
# RPR003 iteration order
# ----------------------------------------------------------------------
def test_rpr003_flags_for_over_set_literal_and_var():
    assert codes("""
        def f(items):
            for x in {1, 2, 3}:
                print(x)
    """) == ["RPR003"]
    assert codes("""
        def f(entries):
            pending = set(entries)
            for item in pending:
                print(item)
    """) == ["RPR003"]


def test_rpr003_flags_comprehension_and_set_arithmetic():
    assert codes("""
        def f(a, b):
            lost = set(a) - set(b)
            return [x for x in lost]
    """) == ["RPR003"]


def test_rpr003_flags_sort_key_id():
    assert codes("""
        def f(objs):
            objs.sort(key=id)
    """) == ["RPR003"]


def test_rpr003_clean_when_sorted_or_rebound():
    assert codes("""
        def f(entries):
            pending = set(entries)
            for item in sorted(pending):
                print(item)
    """) == []
    # rebinding to a list clears the set-ness
    assert codes("""
        def f(entries):
            pending = set(entries)
            pending = sorted(pending)
            for item in pending:
                print(item)
    """) == []


def test_rpr003_nested_function_scanned_in_its_own_scope():
    vs = check("""
        def outer(entries):
            pending = set(entries)
            def inner():
                for item in pending:
                    print(item)
            for item in sorted(pending):
                print(item)
    """)
    # the inner loop iterates the closed-over set: exactly one finding
    assert [v.code for v in vs] == ["RPR003"]


# ----------------------------------------------------------------------
# RPR004 float equality on timestamps
# ----------------------------------------------------------------------
def test_rpr004_flags_timestamp_equality():
    assert codes("""
        def f(sim, frame):
            if sim.now == frame.arrival:
                return True
    """) == ["RPR004"]
    assert codes("""
        def f(a, b):
            return a.finish_time != b.finish_time
    """) == ["RPR004"]


def test_rpr004_clean_on_orderings_and_none_checks():
    assert codes("""
        def f(sim, frame):
            if sim.now >= frame.arrival:
                return True
            if frame.deadline == None:
                return False
    """) == []
    assert codes("""
        def f(count, expected):
            return count == expected
    """) == []


# ----------------------------------------------------------------------
# RPR005 mutable defaults
# ----------------------------------------------------------------------
def test_rpr005_flags_list_dict_and_ctor_defaults():
    assert codes("def f(items=[]):\n    pass\n") == ["RPR005"]
    assert codes("def f(*, table=dict()):\n    pass\n") == ["RPR005"]
    assert codes("""
        from collections import deque

        def f(queue=deque()):
            pass
    """) == ["RPR005"]


def test_rpr005_clean_on_none_and_immutable_defaults():
    assert codes("""
        def f(items=None, rails=(), name="x", n=3):
            pass
    """) == []


# ----------------------------------------------------------------------
# RPR006 trace taxonomy
# ----------------------------------------------------------------------
def test_rpr006_flags_unregistered_category():
    vs = check("""
        def f(sim):
            sim.record("nmad.bogus_category", rank=0)
    """)
    assert [v.code for v in vs] == ["RPR006"]
    assert "nmad.bogus_category" in vs[0].message


def test_rpr006_clean_on_registered_category_and_plain_strings():
    assert codes("""
        def f(sim, trace):
            sim.record("nmad.send_post", rank=0)
            trace.filter("pioman.ltask")
            print("hello there")       # not a .record/.filter call
            sim.record(category, x=1)  # dynamic: not checkable
    """) == []
