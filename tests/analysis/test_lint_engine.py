"""Lint engine: pragmas, baseline workflow, repo cleanliness, CLI."""

import json

from repro.analysis.lint import (
    baseline_counts,
    default_target,
    lint_source,
    load_baseline,
    run_lint,
    save_baseline,
)
from repro.cli import main

BAD = "import time\nstarted = time.time()\n"


# ----------------------------------------------------------------------
# pragma suppression
# ----------------------------------------------------------------------
def test_pragma_bare_allows_every_rule():
    src = "import time\nstarted = time.time()  # repro-lint: allow\n"
    assert lint_source(src, path="repro/x.py") == []


def test_pragma_with_codes_is_selective():
    allowed = ("import time\n"
               "t = time.time()  # repro-lint: allow[RPR001]\n")
    assert lint_source(allowed, path="repro/x.py") == []
    wrong_code = ("import time\n"
                  "t = time.time()  # repro-lint: allow[RPR002]\n")
    assert [v.code for v in lint_source(wrong_code, path="repro/x.py")] \
        == ["RPR001"]


# ----------------------------------------------------------------------
# baseline workflow
# ----------------------------------------------------------------------
def test_baseline_roundtrip_suppresses_then_resurfaces(tmp_path):
    bad = tmp_path / "legacy.py"
    bad.write_text(BAD)
    baseline_file = tmp_path / "baseline.json"

    first = run_lint([str(bad)])
    assert [v.code for v in first.violations] == ["RPR001"]

    save_baseline(str(baseline_file), first.violations)
    data = json.loads(baseline_file.read_text())
    assert data["version"] == 1 and len(data["fingerprints"]) == 1

    second = run_lint([str(bad)], baseline=load_baseline(str(baseline_file)))
    assert second.clean and len(second.baselined) == 1

    # editing the flagged line invalidates its fingerprint
    bad.write_text("import time\nstarted = time.time() + 1.0\n")
    third = run_lint([str(bad)], baseline=load_baseline(str(baseline_file)))
    assert [v.code for v in third.violations] == ["RPR001"]


def test_fingerprint_survives_line_moves():
    a = lint_source(BAD, path="repro/x.py")[0]
    b = lint_source("# a comment\n\n" + BAD, path="repro/x.py")[0]
    assert a.line != b.line
    assert a.fingerprint() == b.fingerprint()


def test_baseline_counts_duplicate_snippets():
    src = BAD + "later = time.time()\nlater = time.time()\n"
    violations = lint_source(src, path="repro/x.py")
    counts = baseline_counts(violations)
    assert sorted(counts.values()) == [1, 2]


# ----------------------------------------------------------------------
# the repo itself must be clean
# ----------------------------------------------------------------------
def test_repro_package_is_lint_clean():
    result = run_lint([default_target()])
    assert result.files > 50
    formatted = "\n".join(v.format() for v in result.violations)
    assert result.clean, f"lint violations in the package:\n{formatted}"


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def test_cli_lint_exit_codes(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text(BAD)
    good = tmp_path / "good.py"
    good.write_text("x = 1\n")

    assert main(["lint", str(good)]) == 0
    assert main(["lint", str(bad)]) == 1
    out = capsys.readouterr().out
    assert "RPR001" in out and "1 violation(s)" in out


def test_cli_lint_list_rules(capsys):
    assert main(["lint", "--list-rules"]) == 0
    out = capsys.readouterr().out
    for code in ("RPR001", "RPR002", "RPR003", "RPR004", "RPR005", "RPR006"):
        assert code in out


def test_cli_lint_baseline_flow(tmp_path, capsys):
    bad = tmp_path / "legacy.py"
    bad.write_text(BAD)
    baseline = tmp_path / "baseline.json"

    assert main(["lint", "--update-baseline", str(baseline), str(bad)]) == 0
    assert main(["lint", "--baseline", str(baseline), str(bad)]) == 0
    out = capsys.readouterr().out
    assert "1 baselined" in out
