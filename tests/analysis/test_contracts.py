"""Contract passes on seeded violation fixtures — one per contract class."""

from repro.analysis.static import check_package, run_check
from repro.analysis.static.callgraph import build_package
from repro.analysis.static.contracts import dead_public_functions

#: a minimal taxonomy module for the RPC005/RPC006 fixtures
TAXONOMY = """
CATEGORIES = {
    "nic.tx": "frame leaves the NIC",
    "ghost.unused": "never emitted anywhere",
}
"""


def codes_of(found):
    return sorted({v.code for v in found})


def check(make_pkg, files):
    found, _graph, _analysis, _dead = check_package(make_pkg(files))
    return found


# ---------------------------------------------------------------------------
# RPC001 — blocking in callback contexts
# ---------------------------------------------------------------------------

def test_blocking_in_subscriber_detected(make_pkg):
    found = check(make_pkg, {"a.py": """
        import time

        class Metrics:
            def on_record(self, rec):
                time.sleep(0.1)

            def attach(self, trace):
                trace.subscribe(self.on_record)
        """})
    assert "RPC001" in codes_of(found)
    [v] = [v for v in found if v.code == "RPC001"]
    assert "on_record" in v.message and "block" in v.message


def test_blocking_reached_through_helper(make_pkg):
    found = check(make_pkg, {"a.py": """
        import time

        def slow_flush():
            time.sleep(1.0)

        class Metrics:
            def on_record(self, rec):
                slow_flush()

            def attach(self, trace):
                trace.subscribe(self.on_record)
        """})
    [v] = [v for v in found if v.code == "RPC001"]
    assert "slow_flush" in v.message


def test_generator_shares_hook_detected(make_pkg):
    found = check(make_pkg, {"a.py": """
        class Strategy:
            def _shares(self, free, item):
                yield 1
        """})
    [v] = [v for v in found if v.code == "RPC001"]
    assert "_shares" in v.message and "yield" in v.message


def test_clean_subscriber_passes(make_pkg):
    found = check(make_pkg, {"a.py": """
        class Metrics:
            def on_record(self, rec):
                self.count = getattr(self, "count", 0) + 1

            def attach(self, trace):
                trace.subscribe(self.on_record)
        """})
    assert "RPC001" not in codes_of(found)


# ---------------------------------------------------------------------------
# RPC002 / RPC003 — funnel escapes
# ---------------------------------------------------------------------------

def test_wrapped_host_clock_detected(make_pkg):
    found = check(make_pkg, {"a.py": """
        from time import time as now

        def my_clock():
            return now()
        """})
    [v] = [v for v in found if v.code == "RPC002"]
    assert "time.time" in v.message and "my_clock" in v.message


def test_funnel_module_is_exempt(make_pkg):
    found = check(make_pkg, {
        "simulator/__init__.py": "",
        "simulator/hostclock.py": """
        import time

        def host_clock():
            return time.time()
        """})
    assert "RPC002" not in codes_of(found)


def test_unseeded_rng_detected(make_pkg):
    found = check(make_pkg, {"a.py": """
        import random

        def jitter():
            return random.random()
        """})
    [v] = [v for v in found if v.code == "RPC003"]
    assert "random.random" in v.message


# ---------------------------------------------------------------------------
# RPC004 — race-instrumentation coverage
# ---------------------------------------------------------------------------

RACY_CLASS = """
class Queue:
    def __init__(self, sim):
        self.sim = sim
        self.items = []

    def guarded_push(self, x):
        self.sim.race_write("queue.items")
        self.items.append(x)

    def bare_push(self, x):
        self.items.append(x)
"""


def test_uninstrumented_shared_write_detected(make_pkg):
    found = check(make_pkg, {"a.py": RACY_CLASS})
    [v] = [v for v in found if v.code == "RPC004"]
    assert "bare_push" in v.message and "self.items.append" in v.message


def test_write_covered_by_instrumented_callers_passes(make_pkg):
    found = check(make_pkg, {"a.py": RACY_CLASS + """

def producer(q):
    q.sim.race_write("queue.items")
    q.bare_push(1)
"""})
    assert "RPC004" not in codes_of(found)


def test_uninstrumented_class_is_out_of_scope(make_pkg):
    found = check(make_pkg, {"a.py": """
        class Plain:
            def push(self, x):
                self.items.append(x)
        """})
    assert "RPC004" not in codes_of(found)


# ---------------------------------------------------------------------------
# RPC005 / RPC006 — taxonomy round-trip
# ---------------------------------------------------------------------------

def test_unregistered_category_detected(make_pkg):
    found = check(make_pkg, {
        "observability/__init__.py": "",
        "observability/taxonomy.py": TAXONOMY,
        "a.py": """
        def emit(sim):
            sim.record("nic.tx", size=4)
            sim.record("rogue.event", size=4)
            sim.record("ghost.unused")
        """})
    [v] = [v for v in found if v.code == "RPC005"]
    assert "rogue.event" in v.message
    assert "RPC006" not in codes_of(found)


def test_dead_taxonomy_entry_detected(make_pkg):
    found = check(make_pkg, {
        "observability/__init__.py": "",
        "observability/taxonomy.py": TAXONOMY,
        "a.py": """
        def emit(sim):
            sim.record("nic.tx", size=4)
        """})
    [v] = [v for v in found if v.code == "RPC006"]
    assert "ghost.unused" in v.message
    assert v.path.endswith("taxonomy.py")


def test_any_literal_counts_as_emission_evidence(make_pkg):
    # indirect emission (functools.partial) leaves the literal somewhere
    found = check(make_pkg, {
        "observability/__init__.py": "",
        "observability/taxonomy.py": TAXONOMY,
        "a.py": """
        from functools import partial

        def emit(sim):
            sim.record("nic.tx", size=4)
            mark = partial(sim.record, "ghost.unused")
            mark()
        """})
    assert "RPC006" not in codes_of(found)


# ---------------------------------------------------------------------------
# suppression
# ---------------------------------------------------------------------------

def test_inline_pragma_suppresses(make_pkg):
    found = check(make_pkg, {"a.py": """
        import random

        def jitter():
            return random.random()  # repro-check: allow[RPC003] test noise
        """})
    assert "RPC003" not in codes_of(found)


def test_comment_line_pragma_covers_next_line(make_pkg):
    found = check(make_pkg, {"a.py": """
        import random

        def jitter():
            # repro-check: allow[RPC003] justification on its own line
            return random.random()
        """})
    assert "RPC003" not in codes_of(found)


def test_baseline_ratchets(make_pkg):
    root = make_pkg({"a.py": """
        import random

        def jitter():
            return random.random()
        """})
    found, _g, _a, _d = check_package(root)
    baseline = {v.fingerprint(): 1 for v in found}
    result = run_check(root, baseline=baseline)
    assert result.clean
    assert len(result.baselined) == len(found)
    # a new violation is NOT covered by the old baseline
    result = run_check(root, baseline={})
    assert not result.clean


# ---------------------------------------------------------------------------
# dead-code report
# ---------------------------------------------------------------------------

def test_dead_code_reported_and_all_annotations_respected(make_pkg):
    graph = build_package(make_pkg({"a.py": """
        __all__ = ["entry", "Exported"]

        def entry():
            helper()

        def helper():
            pass

        def orphan():
            pass

        class Exported:
            def api_method(self):
                pass

        class Internal:
            def unused_method(self):
                pass
        """}))
    dead = {f.qname for f in dead_public_functions(graph)}
    assert "pkg.a.orphan" in dead
    assert "pkg.a.Internal.unused_method" in dead
    assert "pkg.a.entry" not in dead          # __all__ root
    assert "pkg.a.helper" not in dead         # reachable from entry
    assert "pkg.a.Exported.api_method" not in dead   # exported class API
