"""Race detector: happens-before semantics, presets, and the CLI."""

import pytest

from repro import config
from repro.analysis.race import RaceDetector, run_race, run_racy_demo
from repro.cli import main
from repro.simulator import Channel, Semaphore, Simulator


def make_sim():
    det = RaceDetector()
    sim = Simulator()
    det.install(sim)
    return sim, det


# ----------------------------------------------------------------------
# toy happens-before scenarios
# ----------------------------------------------------------------------
def test_unsynchronized_tasks_race():
    sim, det = make_sim()

    def writer():
        yield sim.timeout(1e-6)
        sim.race_write("shared")

    def reader():
        yield sim.timeout(2e-6)
        sim.race_read("shared")

    sim.spawn(writer(), name="writer")
    sim.spawn(reader(), name="reader")
    sim.run()
    report = det.report()
    assert len(report.races) == 1
    race = report.races[0]
    assert race.var == "shared"
    assert {race.first.write, race.second.write} == {True, False}
    assert "RACE on shared" in report.format_text()


def test_event_completion_orders_accesses():
    sim, det = make_sim()
    done = sim.event()

    def writer():
        yield sim.timeout(1e-6)
        sim.race_write("shared")
        done.succeed()

    def reader():
        yield done
        sim.race_read("shared")

    sim.spawn(writer(), name="writer")
    sim.spawn(reader(), name="reader")
    sim.run()
    assert det.report().clean


def test_sync_region_serializes_same_key():
    sim, det = make_sim()

    def writer():
        yield sim.timeout(1e-6)
        with sim.sync_region(("node", 0), "writer"):
            sim.race_write("shared")

    def reader():
        yield sim.timeout(2e-6)
        with sim.sync_region(("node", 0), "reader"):
            sim.race_read("shared")

    sim.spawn(writer(), name="writer")
    sim.spawn(reader(), name="reader")
    sim.run()
    assert det.report().clean


def test_different_region_keys_still_race():
    sim, det = make_sim()

    def writer():
        yield sim.timeout(1e-6)
        with sim.sync_region(("node", 0), "writer"):
            sim.race_write("shared")

    def reader():
        yield sim.timeout(2e-6)
        with sim.sync_region(("node", 1), "reader"):
            sim.race_read("shared")

    sim.spawn(writer(), name="writer")
    sim.spawn(reader(), name="reader")
    sim.run()
    assert len(det.report().races) == 1


def test_region_held_across_suspension_resyncs():
    # the holder keeps the virtual lock across a yield; an interleaved
    # same-key region must still be ordered against both its slices
    sim, det = make_sim()

    def holder():
        with sim.sync_region(("node", 0), "holder"):
            sim.race_write("shared")
            yield sim.timeout(2e-6)
            sim.race_write("shared")

    def interloper():
        yield sim.timeout(1e-6)
        with sim.sync_region(("node", 0), "interloper"):
            sim.race_read("shared")

    sim.spawn(holder(), name="holder")
    sim.spawn(interloper(), name="interloper")
    sim.run()
    assert det.report().clean


def test_semaphore_handoff_orders_accesses():
    sim, det = make_sim()
    sem = Semaphore(sim, 0)

    def producer():
        yield sim.timeout(1e-6)
        sim.race_write("shared")
        sem.release()

    def consumer():
        yield sem.acquire()
        sim.race_read("shared")

    sim.spawn(producer(), name="producer")
    sim.spawn(consumer(), name="consumer")
    sim.run()
    assert det.report().clean


def test_channel_handoff_orders_accesses():
    sim, det = make_sim()
    chan = Channel(sim)

    def producer():
        yield sim.timeout(1e-6)
        sim.race_write("shared")
        chan.put("item")

    def consumer():
        yield sim.timeout(2e-6)
        assert chan.try_get() == "item"
        sim.race_read("shared")

    sim.spawn(producer(), name="producer")
    sim.spawn(consumer(), name="consumer")
    sim.run()
    assert det.report().clean


def test_rogue_callback_races_with_task():
    sim, det = make_sim()

    def worker():
        yield sim.timeout(1e-6)
        sim.race_write("shared")

    sim.spawn(worker(), name="worker")
    sim.schedule(2e-6, lambda: sim.race_read("shared"))
    sim.run()
    report = det.report()
    assert len(report.races) == 1
    kinds = {report.races[0].first.ctx_kind, report.races[0].second.ctx_kind}
    assert kinds == {"task", "callback"}


def test_no_monitor_means_no_overhead_paths():
    sim = Simulator()
    assert sim.monitor is None
    sim.race_write("anything")            # no-op
    with sim.sync_region(("node", 0)):    # null region
        sim.race_read("anything")


# ----------------------------------------------------------------------
# the real stacks
# ----------------------------------------------------------------------
@pytest.mark.parametrize("preset", ["mpich2_nmad", "mpich2_nmad_reliable"])
def test_presets_are_race_free(preset):
    spec = {"mpich2_nmad": config.mpich2_nmad,
            "mpich2_nmad_reliable": config.mpich2_nmad_reliable}[preset]()
    report = run_race(spec, size=65536, reps=3)
    assert report.accesses > 100, "instrumentation did not fire"
    assert report.contexts > 10
    assert report.clean, report.format_text()


def test_racy_demo_is_flagged():
    report = run_racy_demo()
    assert report.races, "seeded racy scenario was not detected"
    assert any(r.var == "nmad.posted@r1" for r in report.races)
    text = report.format_text()
    assert "rogue monitor peek" in text


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def test_cli_race_clean_preset(capsys):
    assert main(["race", "--preset", "mpich2_nmad", "--size", "16K",
                 "--reps", "1"]) == 0
    out = capsys.readouterr().out
    assert "no unordered conflicting accesses" in out


def test_cli_race_demo_exits_nonzero(capsys):
    assert main(["race", "--demo-racy"]) == 1
    out = capsys.readouterr().out
    assert "RACE on" in out
